package sctp

import (
	"repro/internal/netsim"
	"repro/internal/seqnum"
	"repro/internal/sim"
)

// Connect establishes an association with a peer reachable at raddrs
// (all its interface addresses; the first is the initial primary),
// blocking until the four-way handshake completes. streams of 0 uses
// the socket default. Simultaneous INIT collision between two sockets
// converges on a single association per RFC 4960 §5.2.1.
func (sk *Socket) Connect(p *sim.Proc, raddrs []netsim.Addr, rport uint16, streams int) (AssocID, error) {
	if len(raddrs) == 0 {
		return 0, ErrInitFailed
	}
	if streams <= 0 {
		streams = sk.cfg.Streams
	}
	if a := sk.assocs[addrPort{raddrs[0], rport}]; a != nil {
		return a.id, nil // already associated
	}
	a := sk.newAssoc(rport, raddrs)
	a.state = aCookieWait
	a.myTag = sk.nonZeroTag()
	a.nextTSN = seqnum.V(sk.kernel().Rand().Uint32())
	a.cumTSN = 0 // set from peer's initial TSN later
	a.buildPaths()
	a.reqStreams = streams
	a.sendInit()

	for a.state != aEstablished && a.state != aDone {
		a.connCond.Wait(p)
	}
	if a.state == aDone {
		if a.err != nil {
			return 0, a.err
		}
		return 0, ErrInitFailed
	}
	return a.id, nil
}

func (sk *Socket) nonZeroTag() uint32 {
	for {
		if t := sk.kernel().Rand().Uint32(); t != 0 {
			return t
		}
	}
}

// sendInit transmits (or retransmits) the INIT chunk. INIT carries
// verification tag 0 per RFC 4960.
func (a *Assoc) sendInit() {
	pt := a.paths[a.primary]
	init := &chunk{
		Type:        ctInit,
		InitiateTag: a.myTag,
		ARwnd:       uint32(a.cfg.RcvBuf),
		OutStreams:  uint16(a.reqStreams),
		InStreams:   uint16(a.reqStreams),
		InitialTSN:  a.nextTSN,
		Addrs:       a.localAddrs,
	}
	if a.cfg.IData {
		init.Flags |= initFlagIData
	}
	p := &packet{
		SrcPort:         a.sock.port,
		DstPort:         a.peerPort,
		VerificationTag: 0,
		Chunks:          []*chunk{init},
	}
	a.stats.PacketsSent++
	a.sock.stack.node.Send(netsim.NewPooledPacket(pt.src, pt.addr, netsim.ProtoSCTP, encodePacket(p)))
	a.armInitTimer(func() {
		if a.state == aCookieWait {
			a.sendInit()
		}
	})
}

func (a *Assoc) armInitTimer(resend func()) {
	a.initTimer.Stop()
	a.initTimer = a.kernel().After(a.paths[a.primary].rto, func() {
		if a.state != aCookieWait && a.state != aCookieEchoed {
			return
		}
		a.initTries++
		if a.initTries > a.cfg.InitRetries {
			a.fail(ErrTimeout, false)
			return
		}
		// Back off the init RTO.
		pt := a.paths[a.primary]
		pt.rto *= 2
		if pt.rto > a.cfg.RTOMax {
			pt.rto = a.cfg.RTOMax
		}
		resend()
	})
}

// handleInit answers an INIT on a listening socket with INIT-ACK. No
// state is allocated: everything lives in the signed cookie, which is
// how SCTP resists SYN-flood-style attacks (paper §3.5.2).
func (sk *Socket) handleInit(src, dst netsim.Addr, pkt *packet, c *chunk) {
	if !sk.listening {
		return
	}
	localTag := sk.nonZeroTag()
	localTSN := seqnum.V(sk.kernel().Rand().Uint32())
	streams := int(c.OutStreams)
	if streams > sk.cfg.Streams {
		streams = sk.cfg.Streams
	}
	if streams <= 0 {
		streams = 1
	}
	peerAddrs := c.Addrs
	if len(peerAddrs) == 0 {
		peerAddrs = []netsim.Addr{src}
	}
	idata := sk.cfg.IData && c.Flags&initFlagIData != 0
	cookie := &stateCookie{
		PeerPort:   pkt.SrcPort,
		PeerTag:    c.InitiateTag,
		LocalTag:   localTag,
		PeerTSN:    c.InitialTSN,
		LocalTSN:   localTSN,
		OutStreams: uint16(streams),
		InStreams:  uint16(streams),
		IData:      idata,
		PeerAddrs:  peerAddrs,
		LocalAddrs: sk.stack.node.Addrs(),
		IssuedAt:   sk.kernel().Now(),
	}
	initAck := &chunk{
		Type:        ctInitAck,
		InitiateTag: localTag,
		ARwnd:       uint32(sk.cfg.RcvBuf),
		OutStreams:  uint16(streams),
		InStreams:   uint16(streams),
		InitialTSN:  localTSN,
		Addrs:       sk.stack.node.Addrs(),
		Cookie:      cookie.encode(sk.stack.secret),
	}
	if idata {
		initAck.Flags |= initFlagIData
	}
	// INIT-ACK carries the initiator's tag.
	sk.sendControl(dst, src, pkt.SrcPort, c.InitiateTag, initAck)
}

// handleInitAck (client side) advances CookieWait → CookieEchoed.
func (a *Assoc) handleInitAck(src netsim.Addr, c *chunk) {
	if a.state != aCookieWait {
		return
	}
	a.peerTag = c.InitiateTag
	a.cumTSN = c.InitialTSN.Add(^uint32(0)) // peerTSN - 1
	a.peerRwnd = int(c.ARwnd)
	streams := int(c.OutStreams)
	if streams > a.reqStreams {
		streams = a.reqStreams
	}
	// Interleaving is on only when we asked for it and the peer's
	// INIT-ACK confirms it; otherwise fall back to legacy DATA.
	a.useIData = a.cfg.IData && c.Flags&initFlagIData != 0
	a.initStreams(streams, streams)
	// Adopt the peer's full address list for multihoming.
	if len(c.Addrs) > 0 {
		a.adoptPeerAddrs(c.Addrs)
	}
	// The cookie aliases the pooled packet payload and outlives this
	// handler (it is echoed until COOKIE-ACK), so copy it out.
	a.cookie = append([]byte(nil), c.Cookie...)
	a.state = aCookieEchoed
	a.initTries = 0
	a.sendCookieEcho()
}

// adoptPeerAddrs re-keys the association under the peer's complete
// address list and rebuilds paths.
func (a *Assoc) adoptPeerAddrs(addrs []netsim.Addr) {
	sk := a.sock
	for _, pa := range a.peerAddrs {
		key := addrPort{pa, a.peerPort}
		if sk.assocs[key] == a {
			delete(sk.assocs, key)
		}
	}
	a.peerAddrs = addrs
	for _, pa := range addrs {
		sk.assocs[addrPort{pa, a.peerPort}] = a
	}
	oldRTO := a.paths[a.primary].rto
	a.buildPaths()
	a.paths[a.primary].rto = oldRTO
}

// sendCookieEcho transmits (or retransmits) the COOKIE-ECHO chunk.
func (a *Assoc) sendCookieEcho() {
	pt := a.paths[a.primary]
	a.sendChunks(pt.src, pt.addr, []*chunk{{Type: ctCookieEcho, Cookie: a.cookie}})
	a.armInitTimer(func() {
		if a.state == aCookieEchoed {
			a.sendCookieEcho()
		}
	})
}

// handleCookieAck (client side) completes the handshake.
func (a *Assoc) handleCookieAck() {
	if a.state != aCookieEchoed {
		return
	}
	a.initTimer.Stop()
	a.establish()
}

// handleInitCollision implements RFC 4960 §5.2.1: an INIT arriving for
// an association still in COOKIE-WAIT/COOKIE-ECHOED means both
// endpoints initiated simultaneously. Respond with an INIT-ACK that
// reuses our existing initiate tag and TSN so both handshakes converge
// on one consistent association.
func (a *Assoc) handleInitCollision(src, dst netsim.Addr, c *chunk) {
	if a.state == aEstablished {
		// RFC 4960 §5.2.2: an INIT on an established association means
		// the peer's endpoint restarted (it lost all state — the INIT
		// carries a fresh initiate tag). Answer with an INIT-ACK whose
		// cookie holds a NEW local tag and TSN; the restart itself
		// commits only when the signed COOKIE-ECHO returns (see
		// handleCookieEchoOnAssoc), so a spoofed INIT cannot reset us.
		a.handleRestartInit(src, dst, c)
		return
	}
	if a.state != aCookieWait && a.state != aCookieEchoed {
		return // INIT during shutdown: ignore
	}
	streams := int(c.OutStreams)
	if streams > a.reqStreams {
		streams = a.reqStreams
	}
	if streams <= 0 {
		streams = 1
	}
	peerAddrs := c.Addrs
	if len(peerAddrs) == 0 {
		peerAddrs = []netsim.Addr{src}
	}
	sk := a.sock
	idata := a.cfg.IData && c.Flags&initFlagIData != 0
	cookie := &stateCookie{
		PeerPort:   a.peerPort,
		PeerTag:    c.InitiateTag,
		LocalTag:   a.myTag, // reuse, per the collision rule
		PeerTSN:    c.InitialTSN,
		LocalTSN:   a.nextTSN,
		OutStreams: uint16(streams),
		InStreams:  uint16(streams),
		IData:      idata,
		PeerAddrs:  peerAddrs,
		LocalAddrs: a.localAddrs,
		IssuedAt:   sk.kernel().Now(),
	}
	initAck := &chunk{
		Type:        ctInitAck,
		InitiateTag: a.myTag,
		ARwnd:       uint32(a.cfg.RcvBuf),
		OutStreams:  uint16(streams),
		InStreams:   uint16(streams),
		InitialTSN:  a.nextTSN,
		Addrs:       a.localAddrs,
		Cookie:      cookie.encode(sk.stack.secret),
	}
	if idata {
		initAck.Flags |= initFlagIData
	}
	sk.sendControl(dst, src, a.peerPort, c.InitiateTag, initAck)
}

// handleRestartInit answers a restart INIT (RFC 4960 §5.2.2) on an
// established association: INIT-ACK with a new local tag and TSN,
// both committed to a signed cookie, state untouched until the echo.
func (a *Assoc) handleRestartInit(src, dst netsim.Addr, c *chunk) {
	sk := a.sock
	localTag := sk.nonZeroTag()
	localTSN := seqnum.V(sk.kernel().Rand().Uint32())
	streams := int(c.OutStreams)
	if streams > a.cfg.Streams {
		streams = a.cfg.Streams
	}
	if streams <= 0 {
		streams = 1
	}
	peerAddrs := c.Addrs
	if len(peerAddrs) == 0 {
		peerAddrs = []netsim.Addr{src}
	}
	idata := a.cfg.IData && c.Flags&initFlagIData != 0
	cookie := &stateCookie{
		PeerPort:   a.peerPort,
		PeerTag:    c.InitiateTag,
		LocalTag:   localTag,
		PeerTSN:    c.InitialTSN,
		LocalTSN:   localTSN,
		OutStreams: uint16(streams),
		InStreams:  uint16(streams),
		IData:      idata,
		PeerAddrs:  peerAddrs,
		LocalAddrs: a.localAddrs,
		IssuedAt:   sk.kernel().Now(),
	}
	initAck := &chunk{
		Type:        ctInitAck,
		InitiateTag: localTag,
		ARwnd:       uint32(a.cfg.RcvBuf),
		OutStreams:  uint16(streams),
		InStreams:   uint16(streams),
		InitialTSN:  localTSN,
		Addrs:       a.localAddrs,
		Cookie:      cookie.encode(sk.stack.secret),
	}
	if idata {
		initAck.Flags |= initFlagIData
	}
	sk.sendControl(dst, src, a.peerPort, c.InitiateTag, initAck)
}

// restartInPlace commits an RFC 4960 §5.2 association restart: same
// Assoc and AssocID, but every piece of transfer state — queues,
// TSNs, stream sequence numbers, congestion and path state — resets
// as if freshly established, and the new tags from the validated
// cookie are adopted. The application learns via NotifyRestart.
func (a *Assoc) restartInPlace(ck *stateCookie) {
	// Release everything the old incarnation buffered.
	for key, pm := range a.partial {
		pm.releaseFrags()
		delete(a.partial, key)
	}
	for _, oc := range a.outQ {
		oc.releaseBuf()
	}
	for _, oc := range a.rtxQ {
		oc.releaseBuf()
	}
	for _, oc := range a.inflight {
		oc.releaseBuf()
	}
	a.outQ, a.rtxQ, a.inflight = nil, nil, nil
	if a.useIData {
		a.ireasm.release()
	}
	a.sched.drain(func(oc *outChunk) { oc.releaseBuf() })
	a.sndUsed = 0
	a.rcvRanges = nil
	a.dupTSNs = nil
	a.rcvUsed = 0
	a.lastRwnd = 0
	a.pktsNoSack = 0
	a.sackNow = false
	a.sackTimer.Stop()
	a.lastDataSrc = 0
	a.assocErrors = 0

	// Adopt the restarted peer's identity and fresh sequence spaces.
	a.myTag = ck.LocalTag
	a.peerTag = ck.PeerTag
	a.nextTSN = ck.LocalTSN
	a.cumTSN = ck.PeerTSN.Add(^uint32(0))
	a.peerRwnd = 4380 // until the peer advertises again
	// The restarted handshake renegotiated interleaving; the cookie
	// records the agreed mode.
	a.useIData = ck.IData
	a.initStreams(int(ck.OutStreams), int(ck.InStreams))

	// Fresh path state (timers included), as for a new association.
	for _, pt := range a.paths {
		pt.t3.Stop()
		pt.hbTimer.Stop()
	}
	a.buildPaths()
	a.startHeartbeats()

	a.stats.Restarts++
	if p := a.cfg.Probe; p != nil && p.Restart != nil {
		p.Restart(a)
	}
	a.sock.enqueue(&Message{
		Assoc:        a.id,
		Peer:         a.peerAddrs[0],
		Notification: NotifyRestart,
	})
	a.sndCond.Broadcast()
}

// handleCookieEchoOnAssoc processes a COOKIE-ECHO that arrives while
// the association already exists: our COOKIE-ACK was lost (established
// case), the peer restarted (§5.2 — the cookie carries tags that
// differ from the current ones), or this is the closing leg of an INIT
// collision.
func (a *Assoc) handleCookieEchoOnAssoc(src, dst netsim.Addr, c *chunk) {
	if a.state == aEstablished {
		if ck, err := decodeCookie(c.Cookie, a.sock.stack.secret); err == nil &&
			(ck.LocalTag != a.myTag || ck.PeerTag != a.peerTag) {
			// A validated cookie with new tags: the peer restarted.
			a.restartInPlace(ck)
			pt := a.paths[a.primary]
			a.sendChunks(pt.src, pt.addr, []*chunk{{Type: ctCookieAck}})
			return
		}
		// Our COOKIE-ACK was lost; resend it.
		a.sendChunks(dst, src, []*chunk{{Type: ctCookieAck}})
		return
	}
	if a.state != aCookieWait && a.state != aCookieEchoed {
		return
	}
	ck, err := decodeCookie(c.Cookie, a.sock.stack.secret)
	if err != nil || ck.LocalTag != a.myTag {
		return
	}
	a.peerTag = ck.PeerTag
	a.cumTSN = ck.PeerTSN.Add(^uint32(0))
	if a.numOut == 0 {
		a.useIData = ck.IData
		a.initStreams(int(ck.OutStreams), int(ck.InStreams))
	}
	a.initTimer.Stop()
	a.establish()
	pt := a.paths[a.primary]
	a.sendChunks(pt.src, pt.addr, []*chunk{{Type: ctCookieAck}})
}

// handleCookieEcho (server side) validates the cookie and instantiates
// the association — the first moment the server commits any resources.
func (sk *Socket) handleCookieEcho(src, dst netsim.Addr, pkt *packet, c *chunk) {
	if !sk.listening {
		return
	}
	ck, err := decodeCookie(c.Cookie, sk.stack.secret)
	if err != nil {
		return
	}
	if sk.kernel().Now()-ck.IssuedAt > sk.cfg.CookieLifetime {
		// Stale cookie: a real stack sends an ERROR; dropping forces
		// the peer to restart the handshake, which is equivalent here.
		return
	}
	if ck.PeerPort != pkt.SrcPort {
		return
	}
	a := sk.newAssoc(ck.PeerPort, ck.PeerAddrs)
	a.myTag = ck.LocalTag
	a.peerTag = ck.PeerTag
	a.nextTSN = ck.LocalTSN
	a.cumTSN = ck.PeerTSN.Add(^uint32(0))
	a.buildPaths()
	// ck.IData is the AND of both sides' preferences: we wrote it into
	// the cookie we signed at INIT time, so it is trustworthy here.
	a.useIData = ck.IData
	a.initStreams(int(ck.OutStreams), int(ck.InStreams))
	a.establish()
	// COOKIE-ACK, with which data could be bundled (the paper notes the
	// third and fourth handshake legs may carry user data).
	pt := a.paths[a.primary]
	a.sendChunks(pt.src, pt.addr, []*chunk{{Type: ctCookieAck}})
}
