package sctp

import "fmt"

// SetDebugT3 installs an observer invoked on every T3 retransmission
// timeout, with a one-line summary of the association's send state.
// Pass nil to remove it. Intended for tests and diagnosis.
func SetDebugT3(fn func(info string)) {
	if fn == nil {
		debugT3 = nil
		return
	}
	debugT3 = func(a *Assoc, pi int) {
		fn(fmt.Sprintf("t=%v assoc=%d state=%d path=%d inflight=%d outQ=%d rtxQ=%d",
			a.kernel().Now(), a.id, a.state, pi, len(a.inflight), len(a.outQ), len(a.rtxQ)))
	}
}
