package sctp

import (
	"errors"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// StackStats counts stack-level events that occur before a packet is
// demultiplexed to an association.
type StackStats struct {
	ChecksumDrops int64 // packets rejected by CRC32c verification
	DecodeDrops   int64 // packets rejected as malformed
}

// Stack is the per-node SCTP instance.
type Stack struct {
	node     *netsim.Node
	cfg      Config
	socks    map[uint16]*Socket
	secret   []byte
	nextPort uint16
	nextID   AssocID

	Stats StackStats
}

// NewStack attaches an SCTP stack with default socket config cfg to
// node.
func NewStack(node *netsim.Node, cfg Config) *Stack {
	s := &Stack{
		node:     node,
		cfg:      cfg.withDefaults(),
		socks:    make(map[uint16]*Socket),
		nextPort: 32768,
	}
	// Per-stack cookie secret, drawn from the deterministic kernel RNG.
	s.secret = make([]byte, 32)
	for i := range s.secret {
		s.secret[i] = byte(node.Kernel().Rand().Intn(256))
	}
	node.Handle(netsim.ProtoSCTP, s.handlePacket)
	return s
}

// Node returns the node this stack is attached to.
func (s *Stack) Node() *netsim.Node { return s.node }

func (s *Stack) kernel() *sim.Kernel { return s.node.Kernel() }

func (s *Stack) ephemeralPort() uint16 {
	p := s.nextPort
	s.nextPort++
	if s.nextPort == 0 {
		s.nextPort = 32768
	}
	return p
}

// respondOOTB answers an out-of-the-blue packet (no socket on the
// destination port) with an ABORT: for INIT, the ABORT carries the
// INIT's initiate tag (the only tag the sender will accept while in
// COOKIE-WAIT); for DATA, the packet's verification tag is reflected
// with the T-bit set.
func (s *Stack) respondOOTB(src, dst netsim.Addr, pkt *packet) {
	for _, c := range pkt.Chunks {
		if c.Type == ctAbort {
			return
		}
	}
	for _, c := range pkt.Chunks {
		var ab *chunk
		switch c.Type {
		case ctInit:
			ab = &chunk{Type: ctAbort, Reason: "no endpoint"}
		case ctData:
			ab = &chunk{Type: ctAbort, Flags: abortTBit, Reason: "no endpoint"}
		default:
			continue
		}
		tag := pkt.VerificationTag
		if c.Type == ctInit {
			tag = c.InitiateTag
		}
		p := &packet{
			SrcPort:         pkt.DstPort,
			DstPort:         pkt.SrcPort,
			VerificationTag: tag,
			Chunks:          []*chunk{ab},
		}
		s.node.Send(netsim.NewPooledPacket(src, dst, netsim.ProtoSCTP, encodePacket(p)))
		return
	}
}

func (s *Stack) handlePacket(ipPkt *netsim.Packet, ifc *netsim.Iface) {
	pkt, err := decodePacket(ipPkt.Payload, s.cfg.ChecksumVerify)
	if err != nil {
		// A corrupted packet that fails the CRC (or is structurally
		// unparseable) is dropped here; the sender's T3 timer recovers,
		// exactly as with loss. The paper's kernels computed the CRC but
		// this is where it pays off under real corruption.
		if errors.Is(err, errBadCRC) {
			s.Stats.ChecksumDrops++
		} else {
			s.Stats.DecodeDrops++
		}
		return
	}
	sk, ok := s.socks[pkt.DstPort]
	if !ok {
		// No socket on this port (the endpoint aborted and released it):
		// answer out-of-the-blue INIT and DATA with an ABORT per RFC
		// 4960 §8.4, so a peer dialing or retransmitting into a dead
		// endpoint fails fast instead of exhausting its timers. Packets
		// that themselves carry an ABORT are never answered (rule 2).
		s.respondOOTB(ipPkt.Dst, ipPkt.Src, pkt)
		releasePacket(pkt)
		return
	}
	// DATA chunk payloads alias the IP payload; record the owning packet
	// so the reassembly queue can hold a reference instead of copying.
	nData := 0
	for _, c := range pkt.Chunks {
		if c.Type == ctData || c.Type == ctIData {
			c.buf = ipPkt
			nData++
		}
	}
	// Dispatch keeps nothing but payload slices and the owning netsim
	// packet; the decoded packet and its chunks recycle right after.
	deliver := func() {
		sk.handlePacket(ipPkt.Src, ipPkt.Dst, pkt)
		releasePacket(pkt)
	}
	if d := sk.cfg.PerChunkDelay; d > 0 && nData > 0 {
		// The chunks alias the pooled payload; keep it alive across the
		// deferred dispatch.
		ipPkt.Retain()
		s.kernel().After(time.Duration(nData)*d, func() {
			deliver()
			ipPkt.Release()
		})
		return
	}
	deliver()
}
