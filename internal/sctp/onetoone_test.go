package sctp

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestOneToOneEcho(t *testing.T) {
	k, sa, sb, _ := pair(41, lan(), Config{HBDisable: true})
	l, err := sb.ListenOneToOne(5000)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			m, err := c.RecvMsg(p)
			if err != nil {
				return // peer closed
			}
			if err := c.SendMsg(p, m.Stream, m.Data); err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		c, err := sa.Dial(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 4)
		if err != nil {
			t.Error(err)
			return
		}
		if c.NumStreams() != 4 {
			t.Errorf("streams = %d", c.NumStreams())
		}
		for i := 0; i < 5; i++ {
			msg := []byte{byte(i), byte(i * 2)}
			if err := c.SendMsg(p, uint16(i%4), msg); err != nil {
				t.Error(err)
				return
			}
			m, err := c.RecvMsg(p)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(m.Data, msg) || m.Stream != uint16(i%4) {
				t.Errorf("echo %d mismatch: %v stream %d", i, m.Data, m.Stream)
				return
			}
		}
		c.Close()
		l.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOneToOneManyClients(t *testing.T) {
	// Several one-to-one clients against one listener: each accepted
	// Conn must see only its own messages.
	k := sim.New(42)
	net := netsim.NewNetwork(k)
	net.SetDefaultLinkParams(lan())
	const clients = 3
	server := net.NewNode("srv")
	server.AddInterface(netsim.MakeAddr(0, 1))
	ss := NewStack(server, Config{HBDisable: true})
	l, err := ss.ListenOneToOne(5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		nd := net.NewNode("cli")
		nd.AddInterface(netsim.MakeAddr(0, 10+i))
		cs := NewStack(nd, Config{HBDisable: true})
		id := byte(i)
		k.Spawn("client", func(p *sim.Proc) {
			c, err := cs.Dial(p, []netsim.Addr{netsim.MakeAddr(0, 1)}, 5000, 1)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 10; j++ {
				if err := c.SendMsg(p, 0, []byte{id, byte(j)}); err != nil {
					t.Error(err)
					return
				}
				m, err := c.RecvMsg(p)
				if err != nil {
					t.Error(err)
					return
				}
				if m.Data[0] != id || m.Data[1] != byte(j) {
					t.Errorf("client %d got foreign reply %v", id, m.Data)
					return
				}
			}
			c.Close()
		})
	}
	for i := 0; i < clients; i++ {
		k.Spawn("handler", func(p *sim.Proc) {
			c, err := l.Accept(p)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				m, err := c.RecvMsg(p)
				if err != nil {
					return
				}
				if err := c.SendMsg(p, 0, m.Data); err != nil {
					return
				}
			}
		})
	}
	k.Spawn("closer", func(p *sim.Proc) {
		// Close the listener after everything quiesces so handler
		// processes can exit.
		p.Sleep(2e9)
		l.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
