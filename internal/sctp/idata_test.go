package sctp

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// idataSendRecv pushes count messages of size bytes from client to
// server, with both ends using cfgCli/cfgSrv respectively, and checks
// content plus per-stream MID ordering. It returns the client and
// server associations for post-run inspection.
func idataSendRecv(t *testing.T, seed int64, cfgCli, cfgSrv Config, count, size, streams int) (*Assoc, *Assoc) {
	t.Helper()
	k, sa, sb, _ := pair(seed, lan(), cfgCli)
	srv, _ := sb.SocketConfig(5000, cfgSrv)
	srv.Listen()
	received := 0
	lastMID := make(map[uint16]int)
	var srvAssoc *Assoc
	k.Spawn("server", func(p *sim.Proc) {
		for received < count {
			m, err := srv.RecvMsg(p)
			if err != nil {
				t.Error(err)
				return
			}
			if m.Notification != NotifyNone {
				continue
			}
			srvAssoc = srv.Assoc(m.Assoc)
			if len(m.Data) != size {
				t.Errorf("msg size %d want %d", len(m.Data), size)
				return
			}
			for i := range m.Data {
				if m.Data[i] != byte(int(m.Stream)+i) {
					t.Errorf("corrupt payload on stream %d", m.Stream)
					return
				}
			}
			// Per-stream MID ordering: when interleaving is on, each
			// stream's messages must arrive in MID order 0,1,2,...
			if srvAssoc.UsesIData() {
				if last, ok := lastMID[m.Stream]; ok && int(m.MID) != last+1 {
					t.Errorf("stream %d MID %d after %d", m.Stream, m.MID, last)
				} else if !ok && m.MID != 0 {
					t.Errorf("stream %d first MID = %d, want 0", m.Stream, m.MID)
				}
				lastMID[m.Stream] = int(m.MID)
			}
			received++
		}
	})
	var cliAssoc *Assoc
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfgCli)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, streams)
		if err != nil {
			t.Error(err)
			return
		}
		cliAssoc = cli.Assoc(id)
		buf := make([]byte, size)
		for i := 0; i < count; i++ {
			st := uint16(i % streams)
			for j := range buf {
				buf[j] = byte(int(st) + j)
			}
			if err := cli.SendMsg(p, id, st, 0, buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != count {
		t.Fatalf("received %d of %d", received, count)
	}
	return cliAssoc, srvAssoc
}

// TestIDataNegotiatedTransfer checks that when both ends enable
// RFC 8260 interleaving, the association uses I-DATA chunks end to
// end, including multi-chunk fragmented messages.
func TestIDataNegotiatedTransfer(t *testing.T) {
	cfg := Config{IData: true, SndBuf: 220 << 10, RcvBuf: 220 << 10}
	cli, srv := idataSendRecv(t, 101, cfg, cfg, 40, 30<<10, 10)
	if !cli.UsesIData() || !srv.UsesIData() {
		t.Fatalf("interleaving not negotiated: cli %v srv %v", cli.UsesIData(), srv.UsesIData())
	}
	cs, ss := cli.Statistics(), srv.Statistics()
	if cs.IDataChunksSent == 0 {
		t.Error("client sent no I-DATA chunks")
	}
	if ss.IDataChunksRcvd == 0 {
		t.Error("server received no I-DATA chunks")
	}
}

// TestIDataLegacyInterop is the fallback matrix: whenever either end
// does not enable interleaving, the association must run pure
// RFC 4960 DATA and still deliver correctly.
func TestIDataLegacyInterop(t *testing.T) {
	cases := []struct {
		name     string
		cli, srv bool
	}{
		{"idata-client_legacy-server", true, false},
		{"legacy-client_idata-server", false, true},
		{"legacy-both", false, false},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfgCli := Config{IData: tc.cli, SndBuf: 220 << 10, RcvBuf: 220 << 10}
			cfgSrv := Config{IData: tc.srv, SndBuf: 220 << 10, RcvBuf: 220 << 10}
			cli, srv := idataSendRecv(t, 110+int64(i), cfgCli, cfgSrv, 30, 20<<10, 5)
			if cli.UsesIData() || srv.UsesIData() {
				t.Fatalf("fell forward to I-DATA: cli %v srv %v", cli.UsesIData(), srv.UsesIData())
			}
			cs, ss := cli.Statistics(), srv.Statistics()
			if cs.IDataChunksSent != 0 || ss.IDataChunksRcvd != 0 {
				t.Errorf("I-DATA chunks on legacy assoc: sent %d rcvd %d",
					cs.IDataChunksSent, ss.IDataChunksRcvd)
			}
		})
	}
}

// TestIDataSchedulers runs a mixed-stream transfer under every
// scheduler policy; whatever the send-side interleaving order,
// per-stream MID delivery order and payload integrity must hold.
func TestIDataSchedulers(t *testing.T) {
	for i, pol := range []SchedPolicy{SchedFIFO, SchedRoundRobin, SchedWeightedFair, SchedPriority} {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{
				IData:     true,
				Scheduler: pol,
				SndBuf:    220 << 10,
				RcvBuf:    220 << 10,
			}
			idataSendRecv(t, 120+int64(i), cfg, cfg, 40, 12<<10, 4)
		})
	}
}

// TestIDataSchedulersUnderLoss repeats the scheduler matrix on a
// lossy link, exercising retransmission of transmit-time-TSN chunks.
func TestIDataSchedulersUnderLoss(t *testing.T) {
	for i, pol := range []SchedPolicy{SchedFIFO, SchedRoundRobin, SchedWeightedFair, SchedPriority} {
		t.Run(pol.String(), func(t *testing.T) {
			lp := lan()
			lp.LossRate = 0.03
			cfg := Config{
				IData:     true,
				Scheduler: pol,
				SndBuf:    220 << 10,
				RcvBuf:    220 << 10,
			}
			k, sa, sb, _ := pair(130+int64(i), lp, cfg)
			srv, _ := sb.SocketConfig(5000, cfg)
			srv.Listen()
			const count, size, streams = 30, 8 << 10, 4
			received := 0
			k.Spawn("server", func(p *sim.Proc) {
				for received < count {
					m, err := srv.RecvMsg(p)
					if err != nil {
						t.Error(err)
						return
					}
					if m.Notification != NotifyNone {
						continue
					}
					if len(m.Data) != size {
						t.Errorf("msg size %d want %d", len(m.Data), size)
						return
					}
					received++
				}
			})
			k.Spawn("client", func(p *sim.Proc) {
				cli, _ := sa.SocketConfig(0, cfg)
				id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, streams)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < count; i++ {
					if err := cli.SendMsg(p, id, uint16(i%streams), 0, make([]byte, size)); err != nil {
						t.Error(err)
						return
					}
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if received != count {
				t.Fatalf("received %d of %d", received, count)
			}
		})
	}
}

// TestIDataPriorityPreemption is the paper's head-of-line argument
// taken to chunk granularity: with a strict-priority scheduler, a
// small message on a high-priority stream that is enqueued while a
// bulk transfer's fragments are still queued must be delivered before
// the bulk message completes.
func TestIDataPriorityPreemption(t *testing.T) {
	cfg := Config{
		IData:     true,
		Scheduler: SchedPriority,
		SndBuf:    512 << 10,
		RcvBuf:    512 << 10,
	}
	k, sa, sb, _ := pair(140, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	var order []uint16
	k.Spawn("server", func(p *sim.Proc) {
		for len(order) < 2 {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification != NotifyNone {
				continue
			}
			order = append(order, m.Stream)
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 2)
		if err != nil {
			t.Error(err)
			return
		}
		// Stream 0 carries bulk at the default class; stream 1 is the
		// latency-sensitive class.
		if err := cli.SetStreamPriority(id, 0, 2); err != nil {
			t.Error(err)
			return
		}
		if err := cli.SetStreamPriority(id, 1, 0); err != nil {
			t.Error(err)
			return
		}
		// Queue a 256 KiB bulk message, then immediately a small one.
		// The bulk's fragments dominate the send queue; only chunk-level
		// preemption can get the small message out first.
		if err := cli.SendMsg(p, id, 0, 0, make([]byte, 256<<10)); err != nil {
			t.Error(err)
			return
		}
		if err := cli.SendMsg(p, id, 1, 0, []byte("urgent")); err != nil {
			t.Error(err)
			return
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(order))
	}
	if order[0] != 1 {
		t.Fatalf("delivery order = %v, want the small stream-1 message first", order)
	}
}

// TestIDataDeterminism: same seed, same virtual-time outcome, with
// interleaving and a non-trivial scheduler in play.
func TestIDataDeterminism(t *testing.T) {
	run := func() string {
		cfg := Config{IData: true, Scheduler: SchedWeightedFair, SndBuf: 220 << 10, RcvBuf: 220 << 10}
		k, sa, sb, _ := pair(150, lan(), cfg)
		srv, _ := sb.SocketConfig(5000, cfg)
		srv.Listen()
		received := 0
		k.Spawn("server", func(p *sim.Proc) {
			for received < 30 {
				m, err := srv.RecvMsg(p)
				if err != nil {
					return
				}
				if m.Notification == NotifyNone {
					received++
				}
			}
		})
		k.Spawn("client", func(p *sim.Proc) {
			cli, _ := sa.SocketConfig(0, cfg)
			id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 5)
			if err != nil {
				return
			}
			for i := 0; i < 30; i++ {
				cli.SendMsg(p, id, uint16(i%5), 0, make([]byte, 6000))
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(k.Now(), received)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %s vs %s", a, b)
	}
}
