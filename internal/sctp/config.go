package sctp

import (
	"errors"
	"time"

	"repro/internal/transport"
)

// Errors returned by the socket API. The cross-stack conditions wrap
// their canonical internal/transport sentinels so errors.Is matches
// either stack's variant; purely SCTP-specific conditions remain local.
var (
	ErrWouldBlock  = transport.Wrap(transport.ErrWouldBlock, "sctp: operation would block")
	ErrMsgSize     = transport.Wrap(transport.ErrMsgSize, "sctp: message exceeds send buffer size")
	ErrClosed      = transport.Wrap(transport.ErrClosed, "sctp: socket closed")
	ErrAborted     = transport.Wrap(transport.ErrAborted, "sctp: association aborted")
	ErrTimeout     = transport.Wrap(transport.ErrTimeout, "sctp: association timed out")
	ErrNoAssoc     = transport.Wrap(transport.ErrNotConnected, "sctp: no such association")
	ErrBadStream   = errors.New("sctp: invalid stream number")
	ErrPortInUse   = errors.New("sctp: port in use")
	ErrInitFailed  = errors.New("sctp: association setup failed")
	ErrStaleCookie = errors.New("sctp: stale cookie")
)

// Config holds per-socket tunables. Zero values select the documented
// defaults.
type Config struct {
	SndBuf int // send buffer bytes (default 64 KiB; experiments use 220 KiB)
	RcvBuf int // receive buffer / advertised rwnd (default 64 KiB; 220 KiB in experiments)

	Streams int // outbound/inbound streams per association (default 10, the paper's pool)

	RTOInitial time.Duration // default 3 s (RFC 4960)
	RTOMin     time.Duration // default 1 s
	RTOMax     time.Duration // default 60 s

	SackDelay     time.Duration // delayed SACK timer (default 200 ms)
	SackEveryPkts int           // SACK at least every n packets (default 2)

	FastRtxThreshold int // missing reports before fast retransmit (default 3)

	PathMaxRetrans  int           // per-path error threshold (default 5)
	AssocMaxRetrans int           // association error threshold (default 10)
	HBInterval      time.Duration // heartbeat interval for idle paths (default 30 s)
	HBDisable       bool

	CookieLifetime time.Duration // default 60 s
	Autoclose      time.Duration // close idle associations (0 = off)

	InitRetries int // INIT / COOKIE-ECHO retransmissions (default 8)

	// ChecksumVerify enables CRC32c verification on receive. The paper
	// turned the CRC off in the kernel so checksum cost would not skew
	// results; the default here mirrors that (checksums are still
	// computed on send for wire realism, but not charged as CPU cost).
	ChecksumVerify bool

	// PerChunkDelay models receive-side CPU cost per data chunk, the
	// analogue of tcp.Config.PerSegmentDelay.
	PerChunkDelay time.Duration

	// AckCountingCwnd is an ablation switch: grow the congestion window
	// per SACK received (TCP-style ack counting) instead of by bytes
	// acknowledged, removing one of the advantages §4.1.1 credits for
	// SCTP's loss resilience.
	AckCountingCwnd bool

	// Probe, when non-nil, receives protocol-event callbacks (delivery
	// order, cumulative-TSN advance, congestion-window changes, path
	// failover). The chaos harness installs its invariant oracles here.
	Probe *Probe

	// IData enables RFC 8260 user-message interleaving: fragmented
	// messages are sent as I-DATA chunks keyed by (stream, MID, FSN), so
	// one stream's large message no longer monopolizes the TSN space and
	// other streams' chunks can be interleaved between its fragments.
	// The capability is negotiated at handshake; an association falls
	// back to legacy DATA chunks unless both endpoints enable it.
	IData bool

	// Scheduler selects the sender-side stream scheduler used when
	// I-DATA is negotiated (default SchedFIFO, the legacy global arrival
	// order). Ignored on legacy DATA associations, whose fragments must
	// occupy consecutive TSNs.
	Scheduler SchedPolicy

	// CMT enables Concurrent Multipath Transfer: new data is striped
	// across all active paths instead of using only the primary. This
	// is the University of Delaware extension the paper's §2.1 and §5
	// describe as upcoming ("will be available as a sysctl option by
	// the end of year 2005"). Includes a split-fast-retransmit rule so
	// cross-path reordering does not trigger spurious retransmissions.
	CMT bool
}

func (c Config) withDefaults() Config {
	if c.SndBuf == 0 {
		c.SndBuf = 64 << 10
	}
	if c.RcvBuf == 0 {
		c.RcvBuf = 64 << 10
	}
	if c.Streams == 0 {
		c.Streams = 10
	}
	if c.RTOInitial == 0 {
		c.RTOInitial = 3 * time.Second
	}
	if c.RTOMin == 0 {
		c.RTOMin = time.Second
	}
	if c.RTOMax == 0 {
		c.RTOMax = 60 * time.Second
	}
	if c.SackDelay == 0 {
		c.SackDelay = 200 * time.Millisecond
	}
	if c.SackEveryPkts == 0 {
		c.SackEveryPkts = 2
	}
	if c.FastRtxThreshold == 0 {
		c.FastRtxThreshold = 3
	}
	if c.PathMaxRetrans == 0 {
		c.PathMaxRetrans = 5
	}
	if c.AssocMaxRetrans == 0 {
		c.AssocMaxRetrans = 10
	}
	if c.HBInterval == 0 {
		c.HBInterval = 30 * time.Second
	}
	if c.CookieLifetime == 0 {
		c.CookieLifetime = 60 * time.Second
	}
	if c.InitRetries == 0 {
		c.InitRetries = 8
	}
	return c
}
