package sctp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/seqnum"
)

func TestDataChunkRoundTrip(t *testing.T) {
	in := &packet{
		SrcPort: 100, DstPort: 200, VerificationTag: 0xfeedface,
		Chunks: []*chunk{{
			Type: ctData, Flags: flagBeginFragment | flagEndFragment,
			TSN: 12345, Stream: 7, SSN: 99, PPID: 42,
			Data: []byte("payload bytes"),
		}},
	}
	out, err := decodePacket(encodePacket(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if out.SrcPort != 100 || out.DstPort != 200 || out.VerificationTag != 0xfeedface {
		t.Fatalf("header mismatch: %+v", out)
	}
	c := out.Chunks[0]
	if c.TSN != 12345 || c.Stream != 7 || c.SSN != 99 || c.PPID != 42 ||
		!bytes.Equal(c.Data, []byte("payload bytes")) {
		t.Fatalf("data chunk mismatch: %+v", c)
	}
}

func TestSackRoundTrip(t *testing.T) {
	in := &packet{
		SrcPort: 1, DstPort: 2, VerificationTag: 3,
		Chunks: []*chunk{{
			Type: ctSack, CumTSNAck: 1000, ARwnd: 65536,
			Gaps:    []gapBlock{{2, 4}, {7, 9}, {20, 20}},
			DupTSNs: []seqnum.V{990, 991},
		}},
	}
	out, err := decodePacket(encodePacket(in), true)
	if err != nil {
		t.Fatal(err)
	}
	c := out.Chunks[0]
	if c.CumTSNAck != 1000 || c.ARwnd != 65536 || len(c.Gaps) != 3 || len(c.DupTSNs) != 2 {
		t.Fatalf("sack mismatch: %+v", c)
	}
	if c.Gaps[1] != (gapBlock{7, 9}) || c.DupTSNs[0] != 990 {
		t.Fatalf("sack contents mismatch: %+v", c)
	}
}

func TestInitRoundTrip(t *testing.T) {
	in := &packet{
		SrcPort: 9, DstPort: 10, VerificationTag: 0,
		Chunks: []*chunk{{
			Type: ctInit, InitiateTag: 555, ARwnd: 220 << 10,
			OutStreams: 10, InStreams: 10, InitialTSN: 777,
			Addrs: []netsim.Addr{netsim.MakeAddr(0, 1), netsim.MakeAddr(1, 1)},
		}},
	}
	out, err := decodePacket(encodePacket(in), true)
	if err != nil {
		t.Fatal(err)
	}
	c := out.Chunks[0]
	if c.InitiateTag != 555 || c.OutStreams != 10 || len(c.Addrs) != 2 ||
		c.Addrs[1] != netsim.MakeAddr(1, 1) {
		t.Fatalf("init mismatch: %+v", c)
	}
}

func TestBundledChunksRoundTrip(t *testing.T) {
	in := &packet{
		SrcPort: 1, DstPort: 2, VerificationTag: 3,
		Chunks: []*chunk{
			{Type: ctSack, CumTSNAck: 5, ARwnd: 100},
			{Type: ctData, Flags: flagBeginFragment | flagEndFragment,
				TSN: 6, Stream: 0, SSN: 0, Data: []byte("abc")},
			{Type: ctData, Flags: flagBeginFragment | flagEndFragment,
				TSN: 7, Stream: 1, SSN: 0, Data: []byte("defgh")},
		},
	}
	out, err := decodePacket(encodePacket(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(out.Chunks))
	}
	if !bytes.Equal(out.Chunks[2].Data, []byte("defgh")) {
		t.Fatalf("third chunk = %q", out.Chunks[2].Data)
	}
}

func TestCorruptChecksumRejected(t *testing.T) {
	in := &packet{SrcPort: 1, DstPort: 2, VerificationTag: 3,
		Chunks: []*chunk{{Type: ctCookieAck}}}
	b := encodePacket(in)
	b[8] ^= 0xff // corrupt the checksum field itself
	if _, err := decodePacket(b, true); err == nil {
		t.Fatal("corrupted packet accepted with checksum verification on")
	}
	if _, err := decodePacket(b, false); err != nil {
		t.Fatal("verification off should skip the checksum")
	}
}

// TestBadCRCErrorIsWrapped pins the error-contract the sentinel lint
// rule enforces: decodePacket wraps errBadCRC with context, so the
// stack's checksum-vs-garbage accounting only works through errors.Is.
// A == comparison would misclassify every CRC failure as a generic
// decode error (inflating DecodeDrops, zeroing ChecksumDrops).
func TestBadCRCErrorIsWrapped(t *testing.T) {
	in := &packet{SrcPort: 1, DstPort: 2, VerificationTag: 3,
		Chunks: []*chunk{{Type: ctCookieAck}}}
	b := encodePacket(in)
	b[8] ^= 0xff
	_, err := decodePacket(b, true)
	if err == nil {
		t.Fatal("corrupted packet accepted")
	}
	if !errors.Is(err, errBadCRC) {
		t.Fatalf("CRC failure %v does not errors.Is-match errBadCRC", err)
	}
	if err == errBadCRC { //simlint:allow sentinel this test pins that the bare sentinel is NOT returned, so == must be false
		t.Fatal("decodePacket returned the bare sentinel; it must wrap it with context so callers are forced through errors.Is")
	}
}

func TestCookieRoundTripAndMAC(t *testing.T) {
	secret := []byte("test-secret")
	ck := &stateCookie{
		PeerPort: 7, PeerTag: 1, LocalTag: 2, PeerTSN: 3, LocalTSN: 4,
		OutStreams: 10, InStreams: 10,
		PeerAddrs:  []netsim.Addr{netsim.MakeAddr(0, 5)},
		LocalAddrs: []netsim.Addr{netsim.MakeAddr(0, 6), netsim.MakeAddr(1, 6)},
		IssuedAt:   12345,
	}
	enc := ck.encode(secret)
	out, err := decodeCookie(enc, secret)
	if err != nil {
		t.Fatal(err)
	}
	if out.PeerPort != 7 || out.LocalTag != 2 || len(out.LocalAddrs) != 2 ||
		out.IssuedAt != 12345 {
		t.Fatalf("cookie mismatch: %+v", out)
	}
	// Tampering must be detected.
	enc[0] ^= 1
	if _, err := decodeCookie(enc, secret); err == nil {
		t.Fatal("tampered cookie accepted")
	}
	enc[0] ^= 1
	if _, err := decodeCookie(enc, []byte("wrong")); err == nil {
		t.Fatal("cookie accepted with wrong secret")
	}
}

func TestQuickDataRoundTrip(t *testing.T) {
	f := func(tsn uint32, stream, ssn uint16, ppid uint32, data []byte) bool {
		if len(data) > 60000 {
			data = data[:60000]
		}
		in := &packet{
			SrcPort: 1, DstPort: 2, VerificationTag: 3,
			Chunks: []*chunk{{
				Type: ctData, Flags: flagBeginFragment,
				TSN: seqnum.V(tsn), Stream: stream, SSN: seqnum.S16(ssn),
				PPID: ppid, Data: data,
			}},
		}
		out, err := decodePacket(encodePacket(in), true)
		if err != nil {
			return false
		}
		c := out.Chunks[0]
		return c.TSN == seqnum.V(tsn) && c.Stream == stream &&
			c.SSN == seqnum.S16(ssn) && c.PPID == ppid && bytes.Equal(c.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGarbageDoesNotPanic(t *testing.T) {
	f := func(b []byte) bool {
		decodePacket(b, false) // must not panic
		decodePacket(b, true)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeInsertMerge(t *testing.T) {
	a := &Assoc{cumTSN: 100}
	for _, tsn := range []uint32{105, 103, 102, 110, 104} {
		a.insertRange(seqnum.V(tsn))
	}
	// Expect [102..105] and [110..110].
	if len(a.rcvRanges) != 2 {
		t.Fatalf("ranges = %+v", a.rcvRanges)
	}
	if a.rcvRanges[0] != (tsnRange{102, 105}) || a.rcvRanges[1] != (tsnRange{110, 110}) {
		t.Fatalf("ranges = %+v", a.rcvRanges)
	}
	if !a.inRanges(104) || a.inRanges(106) || a.inRanges(101) {
		t.Fatal("inRanges wrong")
	}
}
