package sctp

import (
	"repro/internal/netsim"
	"repro/internal/seqnum"
)

// Probe is a set of optional protocol-event callbacks, installed via
// Config.Probe. The chaos harness uses them as invariant-oracle hook
// points; all callbacks run in kernel context and must not mutate
// association state. A nil Probe (the default) costs one pointer check
// per event.
type Probe struct {
	// Deliver fires each time a message is handed to the socket receive
	// queue in per-stream order; ssn is the stream sequence number being
	// delivered. Per (association, stream) the ssn sequence must be
	// exactly 0,1,2,... — the serial-number monotonicity invariant.
	Deliver func(a *Assoc, stream, ssn uint16)

	// DeliverMID fires each time an I-DATA message is handed to the
	// socket receive queue in per-stream order; mid is the message ID
	// being delivered. Per (association, stream) the mid sequence must
	// be exactly 0,1,2,... — the interleaved analogue of Deliver.
	DeliverMID func(a *Assoc, stream uint16, mid uint32)

	// IDataFrag fires for each accepted (non-duplicate, in-window)
	// I-DATA chunk before reassembly, including unfragmented messages
	// (begin and end both set, fsn 0). Oracles use it to check per-MID
	// FSN uniqueness/monotonicity and single-end invariants.
	IDataFrag func(a *Assoc, stream uint16, mid, fsn uint32, begin, end bool)

	// CumTSN fires after the cumulative TSN advances on receive. The
	// reported value must never decrease for an association.
	CumTSN func(a *Assoc, tsn seqnum.V)

	// Cwnd fires whenever a path's congestion state changes (SACK
	// growth, fast retransmit, T3 collapse). limit is the clamp the
	// sender enforces (SndBuf + path MTU).
	Cwnd func(a *Assoc, addr netsim.Addr, cwnd, ssthresh, flight, mtu, limit int)

	// Failover fires when the primary path changes (paper §3.5.1).
	Failover func(a *Assoc, from, to netsim.Addr)

	// Restart fires when an association restarts in place (RFC 4960
	// §5.2): same *Assoc and AssocID, but all TSN/SSN transfer state
	// has been reset. Oracles tracking per-association monotonic
	// sequences must reset their expectations here.
	Restart func(a *Assoc)
}

// probeDeliver reports an in-order delivery to the probe, if any.
func (a *Assoc) probeDeliver(m *Message) {
	if p := a.cfg.Probe; p != nil && p.Deliver != nil {
		p.Deliver(a, m.Stream, m.SSN)
	}
}

// probeDeliverMID reports an in-order I-DATA delivery to the probe.
func (a *Assoc) probeDeliverMID(m *Message) {
	if p := a.cfg.Probe; p != nil && p.DeliverMID != nil {
		p.DeliverMID(a, m.Stream, m.MID)
	}
}

// probeIDataFrag reports an accepted I-DATA chunk to the probe.
func (a *Assoc) probeIDataFrag(c *chunk) {
	if p := a.cfg.Probe; p != nil && p.IDataFrag != nil {
		p.IDataFrag(a, c.Stream, uint32(c.MID), uint32(c.FSN),
			c.Flags&flagBeginFragment != 0, c.Flags&flagEndFragment != 0)
	}
}

// probeCwnd reports path congestion state to the probe, if any.
func (a *Assoc) probeCwnd(pt *path) {
	if p := a.cfg.Probe; p != nil && p.Cwnd != nil {
		p.Cwnd(a, pt.addr, pt.cwnd, pt.ssthresh, pt.flight, pt.mtu, a.cfg.SndBuf+pt.mtu)
	}
}
