package sctp

import (
	"repro/internal/netsim"
	"repro/internal/seqnum"
)

// Probe is a set of optional protocol-event callbacks, installed via
// Config.Probe. The chaos harness uses them as invariant-oracle hook
// points; all callbacks run in kernel context and must not mutate
// association state. A nil Probe (the default) costs one pointer check
// per event.
type Probe struct {
	// Deliver fires each time a message is handed to the socket receive
	// queue in per-stream order; ssn is the stream sequence number being
	// delivered. Per (association, stream) the ssn sequence must be
	// exactly 0,1,2,... — the serial-number monotonicity invariant.
	Deliver func(a *Assoc, stream, ssn uint16)

	// CumTSN fires after the cumulative TSN advances on receive. The
	// reported value must never decrease for an association.
	CumTSN func(a *Assoc, tsn seqnum.V)

	// Cwnd fires whenever a path's congestion state changes (SACK
	// growth, fast retransmit, T3 collapse). limit is the clamp the
	// sender enforces (SndBuf + path MTU).
	Cwnd func(a *Assoc, addr netsim.Addr, cwnd, ssthresh, flight, mtu, limit int)

	// Failover fires when the primary path changes (paper §3.5.1).
	Failover func(a *Assoc, from, to netsim.Addr)

	// Restart fires when an association restarts in place (RFC 4960
	// §5.2): same *Assoc and AssocID, but all TSN/SSN transfer state
	// has been reset. Oracles tracking per-association monotonic
	// sequences must reset their expectations here.
	Restart func(a *Assoc)
}

// probeDeliver reports an in-order delivery to the probe, if any.
func (a *Assoc) probeDeliver(m *Message) {
	if p := a.cfg.Probe; p != nil && p.Deliver != nil {
		p.Deliver(a, m.Stream, m.SSN)
	}
}

// probeCwnd reports path congestion state to the probe, if any.
func (a *Assoc) probeCwnd(pt *path) {
	if p := a.cfg.Probe; p != nil && p.Cwnd != nil {
		p.Cwnd(a, pt.addr, pt.cwnd, pt.ssthresh, pt.flight, pt.mtu, a.cfg.SndBuf+pt.mtu)
	}
}
