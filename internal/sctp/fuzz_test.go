package sctp

import (
	"bytes"
	"testing"

	"repro/internal/seqnum"
	"repro/internal/wire"
)

// FuzzChunkCodec feeds arbitrary bytes to the packet decoder. The
// decoder must never panic, and anything it accepts must survive an
// encode → decode round trip with identical normalized chunk fields —
// the property that makes the wire format safe against a corrupting
// or adversarial network. Seed corpus: testdata/fuzz/FuzzChunkCodec
// (regenerate with FUZZ_SEED_GEN=1, see TestGenerateFuzzCorpus).
func FuzzChunkCodec(f *testing.F) {
	f.Fuzz(func(t *testing.T, b []byte) {
		// The verify path scribbles on the checksum field in place;
		// give it its own copy so the non-verify decode below sees the
		// original input.
		vb := append([]byte(nil), b...)
		if p, err := decodePacket(vb, true); err == nil {
			releasePacket(p)
		}
		p1, err := decodePacket(b, false)
		if err != nil {
			return
		}
		b2 := encodePacket(p1)
		p2, err := decodePacket(b2, true)
		if err != nil {
			t.Fatalf("re-decode of re-encoded packet failed: %v", err)
		}
		if p1.SrcPort != p2.SrcPort || p1.DstPort != p2.DstPort ||
			p1.VerificationTag != p2.VerificationTag {
			t.Fatalf("common header changed: %d/%d/%d vs %d/%d/%d",
				p1.SrcPort, p1.DstPort, p1.VerificationTag,
				p2.SrcPort, p2.DstPort, p2.VerificationTag)
		}
		if len(p1.Chunks) != len(p2.Chunks) {
			t.Fatalf("chunk count changed: %d vs %d", len(p1.Chunks), len(p2.Chunks))
		}
		for i := range p1.Chunks {
			if !chunksEqual(p1.Chunks[i], p2.Chunks[i]) {
				t.Fatalf("chunk %d changed across round trip:\n%+v\nvs\n%+v",
					i, *p1.Chunks[i], *p2.Chunks[i])
			}
		}
		releasePacket(p1)
		releasePacket(p2)
		wire.PutBuf(b2)
	})
}

// chunksEqual compares the normalized (decoded) forms of two chunks.
func chunksEqual(a, b *chunk) bool {
	if a.Type != b.Type || a.Flags != b.Flags ||
		a.TSN != b.TSN || a.Stream != b.Stream || a.SSN != b.SSN ||
		a.PPID != b.PPID || a.MID != b.MID || a.FSN != b.FSN ||
		!bytes.Equal(a.Data, b.Data) ||
		a.InitiateTag != b.InitiateTag || a.ARwnd != b.ARwnd ||
		a.OutStreams != b.OutStreams || a.InStreams != b.InStreams ||
		a.InitialTSN != b.InitialTSN || !bytes.Equal(a.Cookie, b.Cookie) ||
		a.CumTSNAck != b.CumTSNAck ||
		a.HBPath != b.HBPath || a.HBNonce != b.HBNonce ||
		a.Reason != b.Reason {
		return false
	}
	if len(a.Addrs) != len(b.Addrs) || len(a.Gaps) != len(b.Gaps) ||
		len(a.DupTSNs) != len(b.DupTSNs) {
		return false
	}
	for i := range a.Addrs {
		if a.Addrs[i] != b.Addrs[i] {
			return false
		}
	}
	for i := range a.Gaps {
		if a.Gaps[i] != b.Gaps[i] {
			return false
		}
	}
	for i := range a.DupTSNs {
		if a.DupTSNs[i] != b.DupTSNs[i] {
			return false
		}
	}
	return true
}

// reasmOp is one fuzz-decoded I-DATA chunk for the reassembler.
type reasmOp struct {
	stream uint16
	mid    uint32
	fsn    uint32
	begin  bool
	end    bool
	size   int
}

const (
	reasmStreams = 4
	reasmOpBytes = 5
)

// decodeReasmOps turns fuzz bytes into a bounded op sequence. Keeping
// the value ranges small (4 streams, 8 MIDs, 8 FSNs) concentrates the
// search on the interesting collisions: duplicate FSNs, conflicting
// end flags, interleavings, and MID reordering.
func decodeReasmOps(b []byte) []reasmOp {
	var ops []reasmOp
	for len(b) >= reasmOpBytes && len(ops) < 512 {
		op := reasmOp{
			stream: uint16(b[0] % reasmStreams),
			mid:    uint32(b[1] % 8),
			fsn:    uint32(b[2] % 8),
			begin:  b[3]&1 != 0,
			end:    b[3]&2 != 0,
			size:   int(b[4]%32) + 1,
		}
		if op.begin {
			// Codec invariant: the begin fragment's FSN is implicitly 0
			// (the wire carries the PPID in that position).
			op.fsn = 0
		}
		ops = append(ops, op)
		b = b[reasmOpBytes:]
	}
	return ops
}

// opPayload builds the deterministic payload for an op, so the model
// and the reassembler can independently predict assembled bytes.
func opPayload(op reasmOp) []byte {
	d := make([]byte, op.size)
	for i := range d {
		d[i] = byte(int(op.stream)*31 + int(op.mid)*17 + int(op.fsn)*7 + i)
	}
	return d
}

// reasmModel is an independent ~40-line mirror of the documented
// ireasm robustness contract (first fragment per FSN wins, the first
// end fragment fixes the length, delivery at most once in per-stream
// MID order). It uses plain maps and copies — no pooling, no packet
// references — so a divergence indicts the production structure.
type reasmModel struct {
	frags  map[[3]uint32][]byte // (stream, mid, fsn) → payload
	haveB  map[[2]uint32]bool
	haveE  map[[2]uint32]bool
	eFSN   map[[2]uint32]uint32
	parked map[[2]uint32][]byte
	expect [reasmStreams]uint32
	out    []delivered
}

type delivered struct {
	stream uint16
	mid    uint32
	data   []byte
}

func newReasmModel() *reasmModel {
	return &reasmModel{
		frags:  make(map[[3]uint32][]byte),
		haveB:  make(map[[2]uint32]bool),
		haveE:  make(map[[2]uint32]bool),
		eFSN:   make(map[[2]uint32]uint32),
		parked: make(map[[2]uint32][]byte),
	}
}

func (m *reasmModel) feed(op reasmOp, data []byte) {
	if op.begin && op.end {
		m.ordered(op.stream, op.mid, data)
		return
	}
	mk := [2]uint32{uint32(op.stream), op.mid}
	if m.haveE[mk] && op.fsn > m.eFSN[mk] {
		return
	}
	if op.begin {
		m.haveB[mk] = true
	}
	fk := [3]uint32{uint32(op.stream), op.mid, op.fsn}
	if _, dup := m.frags[fk]; !dup {
		m.frags[fk] = data
	}
	if op.end && !m.haveE[mk] {
		m.haveE[mk] = true
		m.eFSN[mk] = op.fsn
		for f := op.fsn + 1; f < 8; f++ {
			delete(m.frags, [3]uint32{uint32(op.stream), op.mid, f})
		}
	}
	if !m.haveB[mk] || !m.haveE[mk] {
		return
	}
	var msg []byte
	for f := uint32(0); f <= m.eFSN[mk]; f++ {
		d, ok := m.frags[[3]uint32{uint32(op.stream), op.mid, f}]
		if !ok {
			return // incomplete
		}
		msg = append(msg, d...)
	}
	for f := uint32(0); f <= m.eFSN[mk]; f++ {
		delete(m.frags, [3]uint32{uint32(op.stream), op.mid, f})
	}
	delete(m.haveB, mk)
	delete(m.haveE, mk)
	delete(m.eFSN, mk)
	m.ordered(op.stream, op.mid, msg)
}

func (m *reasmModel) ordered(stream uint16, mid uint32, data []byte) {
	if mid < m.expect[stream] {
		return
	}
	if mid != m.expect[stream] {
		if _, dup := m.parked[[2]uint32{uint32(stream), mid}]; !dup {
			m.parked[[2]uint32{uint32(stream), mid}] = data
		}
		return
	}
	m.out = append(m.out, delivered{stream, mid, data})
	m.expect[stream]++
	for {
		next, ok := m.parked[[2]uint32{uint32(stream), m.expect[stream]}]
		if !ok {
			return
		}
		delete(m.parked, [2]uint32{uint32(stream), m.expect[stream]})
		m.out = append(m.out, delivered{stream, m.expect[stream], next})
		m.expect[stream]++
	}
}

// FuzzIDataReassembly drives the interleaved reassembler with
// arbitrary chunk sequences — duplicates, conflicting flags, random
// orderings, truncated trains — and checks it never panics, never
// delivers a (stream, MID) twice or out of order, and produces exactly
// the deliveries the independent model predicts. Seed corpus:
// testdata/fuzz/FuzzIDataReassembly.
func FuzzIDataReassembly(f *testing.F) {
	f.Fuzz(func(t *testing.T, b []byte) {
		ops := decodeReasmOps(b)
		var ir ireasm
		ir.init(reasmStreams)
		model := newReasmModel()

		var got []delivered
		var expectMID [reasmStreams]uint32
		deliver := func(m *Message) {
			// Contract invariants checked independently of the model:
			// dense per-stream MID order means no double delivery.
			if m.MID != expectMID[m.Stream] {
				t.Fatalf("stream %d delivered MID %d, want %d",
					m.Stream, m.MID, expectMID[m.Stream])
			}
			expectMID[m.Stream]++
			got = append(got, delivered{m.Stream, m.MID, append([]byte(nil), m.Data...)})
			wire.PutBuf(m.Data)
		}
		for _, op := range ops {
			data := opPayload(op)
			var flags uint8
			if op.begin {
				flags |= flagBeginFragment
			}
			if op.end {
				flags |= flagEndFragment
			}
			c := &chunk{
				Type:   ctIData,
				Flags:  flags,
				Stream: op.stream,
				MID:    seqnum.MID(op.mid),
				FSN:    seqnum.FSN(op.fsn),
				Data:   data,
			}
			ir.feed(c, deliver)
			model.feed(op, data)
		}
		if len(got) != len(model.out) {
			t.Fatalf("delivered %d messages, model predicts %d", len(got), len(model.out))
		}
		for i := range got {
			w := model.out[i]
			if got[i].stream != w.stream || got[i].mid != w.mid ||
				!bytes.Equal(got[i].data, w.data) {
				t.Fatalf("delivery %d: got (s=%d mid=%d %d bytes), want (s=%d mid=%d %d bytes)",
					i, got[i].stream, got[i].mid, len(got[i].data),
					w.stream, w.mid, len(w.data))
			}
		}
		ir.release()
	})
}
