// Package sctp implements a userspace SCTP (RFC 4960 era, as the paper
// used it) over the simulated network: four-way handshake with a signed
// state cookie, verification tags, message-oriented DATA chunks with
// fragmentation and bundling, independent streams with per-stream
// sequence numbers, SACKs with unbounded gap-ack blocks, byte-counting
// congestion control with per-destination state, multihoming with
// heartbeats and failover, one-to-many and one-to-one sockets, and the
// CRC32c checksum (offloadable, as the paper's modified kernel did).
package sctp

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/netsim"
	"repro/internal/seqnum"
	"repro/internal/wire"
)

// errBadCRC marks a packet rejected by CRC32c verification; the stack
// counts these drops separately from other decode failures.
var errBadCRC = errors.New("sctp: bad CRC32c")

// Chunk type identifiers (RFC 4960 §3.2).
const (
	ctData             = 0
	ctInit             = 1
	ctInitAck          = 2
	ctSack             = 3
	ctHeartbeat        = 4
	ctHeartbeatAck     = 5
	ctAbort            = 6
	ctShutdown         = 7
	ctShutdownAck      = 8
	ctCookieEcho       = 10
	ctCookieAck        = 11
	ctShutdownComplete = 14
	ctIData            = 64 // RFC 8260 interleaved DATA
)

// DATA chunk flags.
const (
	flagEndFragment   = 0x01 // E bit
	flagBeginFragment = 0x02 // B bit
	flagUnordered     = 0x04 // U bit (not used by the MPI middleware)
)

// ABORT / SHUTDOWN-COMPLETE chunk flags.
const (
	abortTBit = 0x01 // T bit: verification tag is reflected, not ours (RFC 4960 §8.5.1)
)

// INIT / INIT-ACK chunk flags. RFC 8260 negotiates interleaving via a
// Supported Extensions parameter; this stack compresses that to one
// flag bit, which keeps legacy interop semantics identical (both sides
// must advertise it or the association uses plain DATA).
const (
	initFlagIData = 0x01
)

// commonHeaderSize is the SCTP common header: src port, dst port,
// verification tag, checksum.
const commonHeaderSize = 12

// dataChunkHeaderSize is the DATA chunk header (type, flags, length,
// TSN, stream, SSN, PPID).
const dataChunkHeaderSize = 16

// iDataChunkHeaderSize is the I-DATA chunk header (RFC 8260 §2.1):
// type, flags, length, TSN, stream, reserved, MID, then PPID on the
// first fragment (B bit set) or FSN on every later one.
const iDataChunkHeaderSize = 20

// chunk is the parsed form of any chunk. Fields are a union across
// chunk types; Type selects which are meaningful.
type chunk struct {
	Type  uint8
	Flags uint8

	// DATA
	TSN    seqnum.V
	Stream uint16
	SSN    seqnum.S16
	PPID   uint32
	Data   []byte

	// I-DATA (RFC 8260). The wire overlays PPID and FSN: a begin
	// fragment carries the PPID (its FSN is implicitly 0), every later
	// fragment carries the FSN instead.
	MID seqnum.MID
	FSN seqnum.FSN

	// INIT / INIT-ACK
	InitiateTag uint32
	ARwnd       uint32
	OutStreams  uint16
	InStreams   uint16
	InitialTSN  seqnum.V
	Addrs       []netsim.Addr
	Cookie      []byte // INIT-ACK, COOKIE-ECHO

	// SACK
	CumTSNAck seqnum.V
	Gaps      []gapBlock
	DupTSNs   []seqnum.V

	// buf is the pooled IP packet whose payload Data aliases, when the
	// chunk was decoded from the wire. Reassembly retains it instead of
	// copying the fragment.
	buf *netsim.Packet

	// HEARTBEAT / HEARTBEAT-ACK
	HBPath  netsim.Addr
	HBNonce uint64

	// ABORT / errors
	Reason string
}

// gapBlock is a SACK gap-ack block; offsets are relative to CumTSNAck.
type gapBlock struct {
	Start, End uint16 // TSNs [cum+Start, cum+End] have been received
}

// wireSize returns the serialized size of the chunk (including the
// 4-byte chunk header), before padding.
func (c *chunk) wireSize() int {
	switch c.Type {
	case ctData:
		return dataChunkHeaderSize + len(c.Data)
	case ctIData:
		return iDataChunkHeaderSize + len(c.Data)
	case ctInit, ctInitAck:
		return 4 + 16 + 2 + 4*len(c.Addrs) + 2 + len(c.Cookie)
	case ctSack:
		return 4 + 12 + 4*len(c.Gaps) + 4*len(c.DupTSNs)
	case ctHeartbeat, ctHeartbeatAck:
		return 4 + 12
	case ctShutdown:
		return 4 + 4
	case ctAbort:
		return 4 + 2 + len(c.Reason)
	default:
		return 4
	}
}

func (c *chunk) encode(w *wire.Writer) {
	w.U8(c.Type)
	w.U8(c.Flags)
	w.U16(uint16(c.wireSize()))
	switch c.Type {
	case ctData:
		w.U32(uint32(c.TSN))
		w.U16(c.Stream)
		w.U16(uint16(c.SSN))
		w.U32(c.PPID)
		w.Bytes(c.Data)
	case ctIData:
		w.U32(uint32(c.TSN))
		w.U16(c.Stream)
		w.U16(0) // reserved
		w.U32(uint32(c.MID))
		if c.Flags&flagBeginFragment != 0 {
			w.U32(c.PPID)
		} else {
			w.U32(uint32(c.FSN))
		}
		w.Bytes(c.Data)
	case ctInit, ctInitAck:
		w.U32(c.InitiateTag)
		w.U32(c.ARwnd)
		w.U16(c.OutStreams)
		w.U16(c.InStreams)
		w.U32(uint32(c.InitialTSN))
		w.U16(uint16(len(c.Addrs)))
		for _, a := range c.Addrs {
			w.U32(uint32(a))
		}
		w.U16(uint16(len(c.Cookie)))
		w.Bytes(c.Cookie)
	case ctSack:
		w.U32(uint32(c.CumTSNAck))
		w.U32(c.ARwnd)
		w.U16(uint16(len(c.Gaps)))
		w.U16(uint16(len(c.DupTSNs)))
		for _, g := range c.Gaps {
			w.U16(g.Start)
			w.U16(g.End)
		}
		for _, d := range c.DupTSNs {
			w.U32(uint32(d))
		}
	case ctHeartbeat, ctHeartbeatAck:
		w.U32(uint32(c.HBPath))
		w.U64(c.HBNonce)
	case ctShutdown:
		w.U32(uint32(c.CumTSNAck))
	case ctAbort:
		w.U16(uint16(len(c.Reason)))
		w.Bytes([]byte(c.Reason))
	case ctCookieEcho:
		// Cookie carried as the chunk value.
	}
	if c.Type == ctCookieEcho {
		// Fix up: cookie-echo carries raw cookie; re-encode length.
		panic("sctp: cookie-echo must be encoded via encodeCookieEcho")
	}
}

// encodeCookieEcho writes a COOKIE-ECHO chunk (whose value is the raw
// cookie). The flags byte is zero on every chunk this stack originates
// (RFC 4960 §3.3.11), but it is passed through so re-encoding a decoded
// chunk preserves it — the peer ignores it either way.
func encodeCookieEcho(w *wire.Writer, flags uint8, cookie []byte) {
	w.U8(ctCookieEcho)
	w.U8(flags)
	w.U16(uint16(4 + len(cookie)))
	w.Bytes(cookie)
}

// decodeChunk decodes one chunk into c, which it fully resets first.
// The Gaps backing array survives the reset so steady-state SACK
// decoding on a pooled packet is allocation-free; every other slice
// field starts nil because receive-side code is allowed to retain
// Addrs (and copies Cookie/Reason).
func decodeChunk(r *wire.Reader, c *chunk) error {
	gaps := c.Gaps[:0]
	*c = chunk{}
	c.Type = r.U8()
	c.Flags = r.U8()
	length := int(r.U16())
	if length < 4 {
		return fmt.Errorf("sctp: bad chunk length %d", length)
	}
	body := r.Bytes(length - 4)
	if err := r.Err(); err != nil {
		return err
	}
	br := wire.NewReader(body)
	switch c.Type {
	case ctData:
		c.TSN = seqnum.V(br.U32())
		c.Stream = br.U16()
		c.SSN = seqnum.S16(br.U16())
		c.PPID = br.U32()
		c.Data = br.Rest()
	case ctIData:
		c.TSN = seqnum.V(br.U32())
		c.Stream = br.U16()
		br.U16() // reserved
		c.MID = seqnum.MID(br.U32())
		if c.Flags&flagBeginFragment != 0 {
			c.PPID = br.U32() // FSN implicitly 0 on the begin fragment
		} else {
			c.FSN = seqnum.FSN(br.U32())
		}
		c.Data = br.Rest()
	case ctInit, ctInitAck:
		c.InitiateTag = br.U32()
		c.ARwnd = br.U32()
		c.OutStreams = br.U16()
		c.InStreams = br.U16()
		c.InitialTSN = seqnum.V(br.U32())
		na := int(br.U16())
		for i := 0; i < na; i++ {
			c.Addrs = append(c.Addrs, netsim.Addr(br.U32()))
		}
		nc := int(br.U16())
		c.Cookie = br.Bytes(nc)
	case ctSack:
		c.CumTSNAck = seqnum.V(br.U32())
		c.ARwnd = br.U32()
		ng := int(br.U16())
		nd := int(br.U16())
		if ng > 0 {
			c.Gaps = gaps
			for i := 0; i < ng; i++ {
				c.Gaps = append(c.Gaps, gapBlock{br.U16(), br.U16()})
			}
		}
		for i := 0; i < nd; i++ {
			c.DupTSNs = append(c.DupTSNs, seqnum.V(br.U32()))
		}
	case ctHeartbeat, ctHeartbeatAck:
		c.HBPath = netsim.Addr(br.U32())
		c.HBNonce = br.U64()
	case ctShutdown:
		c.CumTSNAck = seqnum.V(br.U32())
	case ctAbort:
		n := int(br.U16())
		c.Reason = string(br.Bytes(n))
	case ctCookieEcho:
		c.Cookie = br.Rest()
	}
	return br.Err()
}

// packet is a parsed SCTP packet: common header plus chunks. Decoded
// packets come from packetPool with their chunks laid out in slab;
// the stack returns them with releasePacket once dispatch finishes
// (chunk structs are dead by then — receive-side code keeps only
// payload slices and the owning netsim packet, never the chunks).
type packet struct {
	SrcPort, DstPort uint16
	VerificationTag  uint32
	Chunks           []*chunk
	slab             []chunk
}

//simlint:allow nopreempt the decoded-packet pool is shared by kernels running concurrently in parallel sweeps, so it must be a sync.Pool; every field is reset on reuse, so pool hit order cannot affect virtual-time behavior
var packetPool = sync.Pool{New: func() any { return new(packet) }}

// releasePacket resets a decoded packet and returns it to the pool.
// Payload aliases are cleared by the per-chunk reset in decodeChunk on
// next use; here it is enough to drop the chunk pointers.
func releasePacket(p *packet) {
	for i := range p.slab {
		c := &p.slab[i]
		gaps := c.Gaps[:0]
		*c = chunk{}
		c.Gaps = gaps
	}
	p.Chunks = p.Chunks[:0]
	packetPool.Put(p)
}

// encodePacket serializes the packet, computing the CRC32c checksum.
// The buffer comes from the shared pool, sized exactly so it is never
// regrown; ownership passes to the caller (in practice to netsim via a
// pooled packet).
func encodePacket(p *packet) []byte {
	size := commonHeaderSize
	for _, c := range p.Chunks {
		n := c.wireSize()
		if c.Type == ctCookieEcho {
			n = 4 + len(c.Cookie)
		}
		size += (n + 3) &^ 3
	}
	w := wire.NewPooledWriter(size)
	w.U16(p.SrcPort)
	w.U16(p.DstPort)
	w.U32(p.VerificationTag)
	w.U32(0) // checksum placeholder
	for _, c := range p.Chunks {
		if c.Type == ctCookieEcho {
			encodeCookieEcho(w, c.Flags, c.Cookie)
		} else {
			c.encode(w)
		}
		w.Pad(4)
	}
	sum := wire.CRC32c(w.B)
	w.B[8] = byte(sum >> 24)
	w.B[9] = byte(sum >> 16)
	w.B[10] = byte(sum >> 8)
	w.B[11] = byte(sum)
	return w.B
}

// decodePacket parses and (when verify is set) checksums a packet.
func decodePacket(b []byte, verify bool) (*packet, error) {
	if len(b) < commonHeaderSize {
		return nil, wire.ErrShort
	}
	if verify {
		sum := uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
		// Zero the checksum field in place for the computation rather
		// than copying the whole packet; delivery is serialized within a
		// kernel, so the scribble is invisible to other readers.
		b[8], b[9], b[10], b[11] = 0, 0, 0, 0
		ok := wire.CRC32c(b) == sum
		b[8] = byte(sum >> 24)
		b[9] = byte(sum >> 16)
		b[10] = byte(sum >> 8)
		b[11] = byte(sum)
		if !ok {
			// Wrapped with packet context: classification must go
			// through errors.Is (the transport error contract), not ==.
			return nil, fmt.Errorf("%w in %d-byte packet", errBadCRC, len(b))
		}
	}
	r := wire.NewReader(b)
	p := packetPool.Get().(*packet)
	p.SrcPort = r.U16()
	p.DstPort = r.U16()
	p.VerificationTag = r.U32()
	r.Skip(4) // checksum
	n := 0
	for r.Remaining() >= 4 {
		start := r.Remaining()
		if n == len(p.slab) {
			p.slab = append(p.slab, chunk{})
		}
		if err := decodeChunk(r, &p.slab[n]); err != nil {
			releasePacket(p)
			return nil, err
		}
		n++
		consumed := start - r.Remaining()
		pad := (4 - consumed%4) % 4
		if pad > r.Remaining() {
			pad = r.Remaining()
		}
		r.Skip(pad)
	}
	// Pointers are taken only after the loop: growing the slab above
	// may have moved it.
	p.Chunks = p.Chunks[:0]
	for i := 0; i < n; i++ {
		p.Chunks = append(p.Chunks, &p.slab[i])
	}
	return p, nil
}
