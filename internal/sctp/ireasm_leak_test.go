package sctp

import (
	"runtime/debug"
	"testing"

	"repro/internal/wire"
)

// TestIReasmRecyclesDroppedCopies pins the deliverOrdered drop paths: a
// message whose MID is stale (already delivered) or a duplicate of a
// parked early arrival carries a pooled buffer that no one will ever
// see again, so deliverOrdered must recycle it instead of leaking it.
// GC is disabled for the test so the pool round-trip is observable by
// buffer identity: a recycled buffer comes back out of GetBuf.
func TestIReasmRecyclesDroppedCopies(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	var ir ireasm
	ir.init(1)
	var got []*Message
	deliver := func(m *Message) { got = append(got, m) }

	mk := func(mid uint32, fill byte) *Message {
		d := wire.GetBuf(64)
		for i := range d {
			d[i] = fill
		}
		return &Message{Stream: 0, MID: mid, Data: d}
	}

	// expectRecycled drains the 64 B pool class looking for b; buffers
	// parked there by earlier tests may come out first.
	expectRecycled := func(what string, b []byte) {
		t.Helper()
		for i := 0; i < 8; i++ {
			if r := wire.GetBuf(64); &r[0] == &b[0] {
				return
			}
		}
		t.Fatalf("%s was not returned to the buffer pool", what)
	}

	ir.deliverOrdered(mk(0, 'a'), deliver)

	// A fabricated replay of the already-delivered MID 0.
	stale := mk(0, 'b')
	ir.deliverOrdered(stale, deliver)
	expectRecycled("stale-MID copy", stale.Data)

	// MID 2 arrives early and parks; a second copy is a duplicate whose
	// buffer must be dropped while the parked one keeps ownership.
	parked := mk(2, 'c')
	ir.deliverOrdered(parked, deliver)
	dup := mk(2, 'd')
	ir.deliverOrdered(dup, deliver)
	expectRecycled("duplicate of a parked arrival", dup.Data)

	// MID 1 flushes the parked MID 2; the parked copy's payload must be
	// intact (the duplicate's recycled buffer never replaced it).
	ir.deliverOrdered(mk(1, 'e'), deliver)
	if len(got) != 3 || got[0].MID != 0 || got[1].MID != 1 || got[2].MID != 2 {
		t.Fatalf("delivery order wrong: %d messages", len(got))
	}
	if got[2].Data[0] != 'c' {
		t.Fatalf("parked message payload corrupted: %q", got[2].Data[0])
	}
	for _, m := range got {
		wire.PutBuf(m.Data)
	}
}
