package sctp

// SchedPolicy selects the sender-side stream scheduler used when RFC
// 8260 I-DATA interleaving is negotiated. Legacy DATA associations
// always transmit in FIFO order (fragments of one message occupy
// consecutive TSNs, so nothing can be interleaved anyway).
type SchedPolicy int

const (
	// SchedFIFO transmits chunks in global arrival order — the legacy
	// behavior, kept as the default so interleaving alone never changes
	// wire ordering.
	SchedFIFO SchedPolicy = iota
	// SchedRoundRobin serves the active streams one chunk at a time in
	// rotation, so no backlogged stream waits more than one chunk per
	// competitor.
	SchedRoundRobin
	// SchedWeightedFair is byte-based deficit round robin: each active
	// stream earns weight×quantum bytes of credit per round and sends
	// while its credit covers the head chunk.
	SchedWeightedFair
	// SchedPriority always serves the runnable stream with the lowest
	// class value (0 is highest priority), round-robining among equals.
	SchedPriority
)

func (p SchedPolicy) String() string {
	switch p {
	case SchedFIFO:
		return "fifo"
	case SchedRoundRobin:
		return "rr"
	case SchedWeightedFair:
		return "wfq"
	case SchedPriority:
		return "prio"
	default:
		return "sched?"
	}
}

// schedQuantum is the byte credit one weight unit earns per
// weighted-fair round. It is at least one MTU so every visit can make
// progress on a full-size fragment.
const schedQuantum = 1500

// streamQ is one stream's send queue plus its scheduling parameters.
type streamQ struct {
	id      uint16
	q       []*outChunk
	prio    uint8 // SchedPriority class; 0 is most urgent
	weight  int   // SchedWeightedFair share; >= 1
	deficit int   // DRR byte credit
}

func (sq *streamQ) empty() bool { return len(sq.q) == 0 }

func (sq *streamQ) popFront() *outChunk {
	oc := sq.q[0]
	sq.q[0] = nil
	sq.q = sq.q[1:]
	if len(sq.q) == 0 {
		sq.q = nil // release the drained backing array
	}
	return oc
}

// sched is the pluggable sender-side stream scheduler for I-DATA mode.
// Chunks of one stream always leave in push (FSN) order; across streams
// the policy decides. peek reserves the next chunk without handing it
// out, so the sender can size packets before committing; the reserved
// chunk is returned by the next pop even if a more urgent chunk arrives
// in between (one-chunk bounded inversion, matching a real stack that
// has already framed the chunk).
type sched struct {
	policy  SchedPolicy
	streams []streamQ
	active  []*streamQ  // non-empty streams in service order
	fifo    []*outChunk // SchedFIFO global arrival order
	sel     *outChunk   // chunk reserved by peek, not yet popped
	npend   int         // chunks pushed and not yet popped (incl. sel)
}

func newSched(policy SchedPolicy, streams int) *sched {
	s := &sched{policy: policy, streams: make([]streamQ, streams)}
	for i := range s.streams {
		s.streams[i].id = uint16(i)
		s.streams[i].weight = 1
	}
	return s
}

// pending returns the number of chunks queued for first transmission.
func (s *sched) pending() int { return s.npend }

func (s *sched) setPriority(stream uint16, prio uint8) { s.streams[stream].prio = prio }

func (s *sched) setWeight(stream uint16, w int) {
	if w < 1 {
		w = 1
	}
	s.streams[stream].weight = w
}

func (s *sched) push(stream uint16, oc *outChunk) {
	s.npend++
	if s.policy == SchedFIFO {
		s.fifo = append(s.fifo, oc)
		return
	}
	sq := &s.streams[stream]
	if sq.empty() {
		s.active = append(s.active, sq)
	}
	sq.q = append(sq.q, oc)
}

// peek returns the chunk the next pop will hand out, reserving it.
func (s *sched) peek() *outChunk {
	if s.sel == nil && s.npend > 0 {
		s.sel = s.selectNext()
	}
	return s.sel
}

// pop removes and returns the next chunk per policy, or nil when empty.
func (s *sched) pop() *outChunk {
	oc := s.peek()
	if oc != nil {
		s.sel = nil
		s.npend--
	}
	return oc
}

// selectNext dequeues one chunk according to the policy. Callers
// guarantee at least one chunk is queued.
func (s *sched) selectNext() *outChunk {
	if s.policy == SchedFIFO {
		oc := s.fifo[0]
		s.fifo[0] = nil
		s.fifo = s.fifo[1:]
		if len(s.fifo) == 0 {
			s.fifo = nil
		}
		return oc
	}
	switch s.policy {
	case SchedRoundRobin:
		return s.serveActive(0)
	case SchedPriority:
		best := 0
		for i, sq := range s.active {
			if sq.prio < s.active[best].prio {
				best = i
			}
		}
		return s.serveActive(best)
	default: // SchedWeightedFair
		for {
			sq := s.active[0]
			if sq.deficit >= sq.q[0].size {
				sq.deficit -= sq.q[0].size
				oc := sq.popFront()
				if sq.empty() {
					// Standard DRR: an idle stream banks no credit.
					sq.deficit = 0
					s.active = s.active[1:]
				}
				return oc
			}
			// Head chunk not covered: grant this round's credit and
			// rotate. Credit grows every full rotation, so the loop
			// terminates for any chunk size.
			sq.deficit += sq.weight * schedQuantum
			s.active = append(s.active[1:], sq)
		}
	}
}

// serveActive pops one chunk from active[i] and rotates that stream to
// the tail (dropping it when drained) — chunk-granular round robin.
func (s *sched) serveActive(i int) *outChunk {
	sq := s.active[i]
	oc := sq.popFront()
	s.active = append(s.active[:i], s.active[i+1:]...)
	if !sq.empty() {
		s.active = append(s.active, sq)
	}
	return oc
}

// drain hands every queued chunk (including a peek-reserved one) to f
// and empties the scheduler; used at association teardown and restart.
func (s *sched) drain(f func(*outChunk)) {
	if s == nil {
		return
	}
	if s.sel != nil {
		f(s.sel)
		s.sel = nil
	}
	for _, oc := range s.fifo {
		f(oc)
	}
	s.fifo = nil
	for i := range s.streams {
		sq := &s.streams[i]
		for _, oc := range sq.q {
			f(oc)
		}
		sq.q = nil
		sq.deficit = 0
	}
	s.active = s.active[:0]
	s.npend = 0
}
