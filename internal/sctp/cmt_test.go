package sctp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// cmtTransfer pushes msgs messages of size bytes over a 3-subnet
// multihomed pair whose links are bandwidth-limited, returning the
// completion time.
func cmtTransfer(t *testing.T, seed int64, cfg Config, msgs, size int, loss float64) time.Duration {
	t.Helper()
	lp := netsim.DefaultLinkParams()
	lp.Bandwidth = 100e6 // 100 Mb/s per link: bandwidth is the bottleneck
	lp.LossRate = loss
	k, sa, sb, _, nodes := mpair(seed, lp, cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	received := 0
	var done time.Duration
	k.Spawn("server", func(p *sim.Proc) {
		for received < msgs {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification != NotifyNone {
				continue
			}
			if len(m.Data) != size {
				t.Errorf("size %d want %d", len(m.Data), size)
				return
			}
			received++
		}
		done = p.Now()
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, nodes[1].Addrs(), 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := cli.SendMsg(p, id, uint16(i%10), 0, make([]byte, size)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != msgs {
		t.Fatalf("received %d of %d", received, msgs)
	}
	return done
}

// TestCMTThroughput: striping across three 100 Mb/s paths must be
// substantially faster than using the primary alone.
func TestCMTThroughput(t *testing.T) {
	base := Config{SndBuf: 220 << 10, RcvBuf: 220 << 10, HBDisable: true}
	single := cmtTransfer(t, 31, base, 40, 64<<10, 0)
	cmtCfg := base
	cmtCfg.CMT = true
	cmt := cmtTransfer(t, 31, cmtCfg, 40, 64<<10, 0)
	if cmt >= single {
		t.Fatalf("CMT (%v) not faster than single path (%v)", cmt, single)
	}
	speedup := float64(single) / float64(cmt)
	if speedup < 1.8 {
		t.Errorf("CMT speedup %.2fx; want approaching 3x over three paths", speedup)
	}
	t.Logf("CMT speedup: %.2fx (%v -> %v)", speedup, single, cmt)
}

// TestCMTIntegrityUnderLoss: striping plus loss plus cross-path
// reordering must still deliver everything intact (split fast
// retransmit handles the reordering).
func TestCMTIntegrityUnderLoss(t *testing.T) {
	cfg := Config{SndBuf: 220 << 10, RcvBuf: 220 << 10, HBDisable: true, CMT: true}
	cmtTransfer(t, 32, cfg, 60, 16<<10, 0.02)
}

// TestCMTSpuriousRetransmissions: on loss-free but unequal-delay paths,
// cross-path reordering must not trigger fast retransmissions (the
// split-fast-retransmit rule). Without SFR, nearly every SACK would
// report "missing" chunks on the slow path.
func TestCMTSpuriousRetransmissions(t *testing.T) {
	cfg := Config{SndBuf: 220 << 10, RcvBuf: 220 << 10, HBDisable: true, CMT: true}
	k := sim.New(33)
	lp := netsim.DefaultLinkParams()
	net, nodes := netsim.Cluster(k, 2, 3, lp)
	// Subnet 1 and 2 are 10x slower than subnet 0: heavy reordering.
	for s := 1; s <= 2; s++ {
		for _, src := range nodes[0].Addrs() {
			for _, dst := range nodes[1].Addrs() {
				if src.Subnet() == s && dst.Subnet() == s {
					slow := lp
					slow.Delay = 10 * lp.Delay
					net.SetLinkParamsBetween(src, dst, slow)
					net.SetLinkParamsBetween(dst, src, slow)
				}
			}
		}
	}
	sa := NewStack(nodes[0], cfg)
	sb := NewStack(nodes[1], cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	const msgs = 60
	received := 0
	k.Spawn("server", func(p *sim.Proc) {
		for received < msgs {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyNone {
				received++
			}
		}
	})
	var st Stats
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, nodes[1].Addrs(), 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		a := cli.Assoc(id)
		for i := 0; i < msgs; i++ {
			if err := cli.SendMsg(p, id, 0, 0, make([]byte, 8<<10)); err != nil {
				t.Error(err)
				return
			}
		}
		for a.totalFlight() > 0 || len(a.outQ) > 0 {
			p.Sleep(time.Millisecond)
		}
		st = a.Statistics()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != msgs {
		t.Fatalf("received %d of %d", received, msgs)
	}
	if st.FastRetransmits > 3 {
		t.Errorf("%d spurious fast retransmissions on loss-free reordered paths (SFR should prevent these)",
			st.FastRetransmits)
	}
	if st.Retransmits > 6 {
		t.Errorf("%d retransmissions with zero loss", st.Retransmits)
	}
}
