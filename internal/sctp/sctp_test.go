package sctp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// pair builds two single-homed nodes with SCTP stacks.
func pair(seed int64, lp netsim.LinkParams, cfg Config) (*sim.Kernel, *Stack, *Stack, *netsim.Network) {
	k := sim.New(seed)
	net := netsim.NewNetwork(k)
	net.SetDefaultLinkParams(lp)
	a := net.NewNode("a")
	a.AddInterface(netsim.MakeAddr(0, 1))
	b := net.NewNode("b")
	b.AddInterface(netsim.MakeAddr(0, 2))
	return k, NewStack(a, cfg), NewStack(b, cfg), net
}

// mpair builds two multihomed nodes (3 subnets each).
func mpair(seed int64, lp netsim.LinkParams, cfg Config) (*sim.Kernel, *Stack, *Stack, *netsim.Network, []*netsim.Node) {
	k := sim.New(seed)
	net, nodes := netsim.Cluster(k, 2, 3, lp)
	return k, NewStack(nodes[0], cfg), NewStack(nodes[1], cfg), net, nodes
}

func lan() netsim.LinkParams { return netsim.DefaultLinkParams() }

func TestHandshakeAndEcho(t *testing.T) {
	k, sa, sb, _ := pair(1, lan(), Config{})
	srv, _ := sb.SocketConfig(5000, Config{})
	srv.Listen()
	done := false
	k.Spawn("server", func(p *sim.Proc) {
		for {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification != NotifyNone {
				continue
			}
			if err := srv.SendMsg(p, m.Assoc, m.Stream, m.PPID, m.Data); err != nil {
				t.Error(err)
				return
			}
			return
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.Socket(0)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 10)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cli.SendMsg(p, id, 3, 77, []byte("ping")); err != nil {
			t.Error(err)
			return
		}
		for {
			m, err := cli.RecvMsg(p)
			if err != nil {
				t.Error(err)
				return
			}
			if m.Notification != NotifyNone {
				continue
			}
			if string(m.Data) != "ping" || m.Stream != 3 || m.PPID != 77 {
				t.Errorf("echo mismatch: %q stream %d ppid %d", m.Data, m.Stream, m.PPID)
			}
			done = true
			return
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("echo did not complete")
	}
}

func TestCommUpNotification(t *testing.T) {
	k, sa, sb, _ := pair(2, lan(), Config{})
	srv, _ := sb.Socket(5000)
	srv.Listen()
	var up int
	k.Spawn("server", func(p *sim.Proc) {
		m, err := srv.RecvMsg(p)
		if err == nil && m.Notification == NotifyCommUp {
			up++
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.Socket(0)
		if _, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0); err != nil {
			t.Error(err)
		}
		m, err := cli.RecvMsg(p)
		if err == nil && m.Notification == NotifyCommUp {
			up++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if up != 2 {
		t.Fatalf("COMM_UP notifications = %d, want 2", up)
	}
}

// sendRecvMany pushes count messages of size bytes from a to b on
// stream cycling and verifies content and per-stream ordering.
func sendRecvMany(t *testing.T, seed int64, lp netsim.LinkParams, cfg Config, count, size, streams int) time.Duration {
	t.Helper()
	k, sa, sb, _ := pair(seed, lp, cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	received := 0
	lastSSN := make(map[uint16]int)
	k.Spawn("server", func(p *sim.Proc) {
		for received < count {
			m, err := srv.RecvMsg(p)
			if err != nil {
				t.Error(err)
				return
			}
			if m.Notification != NotifyNone {
				continue
			}
			if len(m.Data) != size {
				t.Errorf("msg size %d want %d", len(m.Data), size)
				return
			}
			for i := range m.Data {
				if m.Data[i] != byte(int(m.Stream)+i) {
					t.Errorf("corrupt payload on stream %d", m.Stream)
					return
				}
			}
			// Per-stream ordering invariant.
			if last, ok := lastSSN[m.Stream]; ok && int(m.SSN) != last+1 {
				t.Errorf("stream %d SSN %d after %d", m.Stream, m.SSN, last)
			}
			lastSSN[m.Stream] = int(m.SSN)
			received++
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, streams)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, size)
		for i := 0; i < count; i++ {
			st := uint16(i % streams)
			for j := range buf {
				buf[j] = byte(int(st) + j)
			}
			if err := cli.SendMsg(p, id, st, 0, buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != count {
		t.Fatalf("received %d of %d", received, count)
	}
	return k.Now()
}

func TestManySmallMessages(t *testing.T) {
	sendRecvMany(t, 3, lan(), Config{}, 200, 100, 10)
}

func TestFragmentedMessages(t *testing.T) {
	// 30 KiB messages fragment into ~21 chunks each.
	sendRecvMany(t, 4, lan(), Config{SndBuf: 220 << 10, RcvBuf: 220 << 10}, 40, 30<<10, 10)
}

func TestMessagesUnderLoss(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.02
	sendRecvMany(t, 5, lp, Config{SndBuf: 220 << 10, RcvBuf: 220 << 10}, 60, 10<<10, 10)
}

func TestHeavyLossIntegrity(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.05
	sendRecvMany(t, 6, lp, Config{}, 50, 2000, 4)
}

func TestSingleStreamOrdering(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.03
	sendRecvMany(t, 7, lp, Config{}, 100, 500, 1)
}

func TestMsgSizeLimit(t *testing.T) {
	k, sa, sb, _ := pair(8, lan(), Config{SndBuf: 32 << 10})
	srv, _ := sb.Socket(5000)
	srv.Listen()
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, Config{SndBuf: 32 << 10})
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		// A message larger than the send buffer must be rejected with
		// ErrMsgSize — the limitation that drives the middleware's long
		// message chunking (paper §3.6).
		if err := cli.TrySendMsg(id, 0, 0, make([]byte, 33<<10)); err != ErrMsgSize {
			t.Errorf("err = %v, want ErrMsgSize", err)
		}
		if err := cli.TrySendMsg(id, 0, 0, make([]byte, 16<<10)); err != nil {
			t.Errorf("in-size message rejected: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadStream(t *testing.T) {
	k, sa, sb, _ := pair(9, lan(), Config{Streams: 4})
	srv, _ := sb.SocketConfig(5000, Config{Streams: 4})
	srv.Listen()
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, Config{Streams: 4})
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 4)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cli.TrySendMsg(id, 4, 0, []byte("x")); err != ErrBadStream {
			t.Errorf("err = %v, want ErrBadStream", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMultistreamIndependence is the protocol-level Figure 4 scenario:
// a message lost on stream 0 must not delay a later message on stream 1,
// while a single-stream association must deliver them in order.
func TestMultistreamIndependence(t *testing.T) {
	arrival := func(streams int) []uint16 {
		lp := lan()
		k, sa, sb, _ := pair(10, lp, Config{HBDisable: true})
		srv, _ := sb.Socket(5000)
		srv.Listen()
		var order []uint16
		k.Spawn("server", func(p *sim.Proc) {
			for len(order) < 2 {
				m, err := srv.RecvMsg(p)
				if err != nil {
					return
				}
				if m.Notification != NotifyNone {
					continue
				}
				order = append(order, m.Stream)
			}
		})
		k.Spawn("client", func(p *sim.Proc) {
			cli, _ := sa.Socket(0)
			id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 2)
			if err != nil {
				t.Error(err)
				return
			}
			net := sa.node.Network()
			// Lose exactly the next packet (message A).
			net.SetLoss(1.0)
			st1 := uint16(0)
			if streams > 1 {
				st1 = 1
			}
			if err := cli.SendMsg(p, id, 0, 0, []byte("msg-A")); err != nil {
				t.Error(err)
				return
			}
			net.SetLoss(0)
			if err := cli.SendMsg(p, id, st1, 0, []byte("msg-B")); err != nil {
				t.Error(err)
				return
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if len(order) != 2 {
			t.Fatalf("delivered %d messages", len(order))
		}
		return order
	}
	multi := arrival(2)
	if multi[0] != 1 || multi[1] != 0 {
		t.Errorf("multistream delivery order = %v, want [1 0] (B before A)", multi)
	}
	single := arrival(1)
	if single[0] != 0 || single[1] != 0 {
		t.Errorf("single-stream order = %v", single)
	}
}

func TestGracefulShutdown(t *testing.T) {
	k, sa, sb, _ := pair(11, lan(), Config{})
	srv, _ := sb.Socket(5000)
	srv.Listen()
	var cliDone, srvDone bool
	k.Spawn("server", func(p *sim.Proc) {
		for {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyShutdownComplete {
				srvDone = true
				return
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.Socket(0)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cli.SendMsg(p, id, 0, 0, []byte("bye")); err != nil {
			t.Error(err)
			return
		}
		cli.CloseAssoc(id)
		for {
			m, err := cli.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyShutdownComplete {
				cliDone = true
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !cliDone || !srvDone {
		t.Fatalf("shutdown incomplete: client %v server %v", cliDone, srvDone)
	}
}

func TestAbortNotifiesPeer(t *testing.T) {
	k, sa, sb, _ := pair(12, lan(), Config{})
	srv, _ := sb.Socket(5000)
	srv.Listen()
	var lost bool
	k.Spawn("server", func(p *sim.Proc) {
		for {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyCommLost {
				lost = true
				return
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.Socket(0)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		cli.Abort(id, "test")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !lost {
		t.Fatal("peer never saw COMM_LOST")
	}
}

func TestConnectTimeout(t *testing.T) {
	k, sa, _, net := pair(13, lan(), Config{})
	net.SetLoss(1.0)
	var connErr error
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.Socket(0)
		_, connErr = cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if connErr != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", connErr)
	}
}

func TestMultihomedFailover(t *testing.T) {
	cfg := Config{
		HBInterval:     500 * time.Millisecond,
		PathMaxRetrans: 2,
		RTOMin:         200 * time.Millisecond,
		RTOInitial:     200 * time.Millisecond,
	}
	k, sa, sb, net, nodes := mpair(14, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	received := 0
	const rounds = 30
	k.Spawn("server", func(p *sim.Proc) {
		for received < rounds {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification != NotifyNone {
				continue
			}
			received++
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, nodes[1].Addrs(), 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		a := cli.Assoc(id)
		for i := 0; i < rounds; i++ {
			if i == 10 {
				// Primary network fails mid-run.
				net.SetSubnetDown(0, true)
			}
			if err := cli.SendMsg(p, id, 0, 0, make([]byte, 1000)); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(50 * time.Millisecond)
		}
		// Wait for retransmissions to drain.
		for a.totalFlight() > 0 || len(a.outQ) > 0 || len(a.rtxQ) > 0 {
			p.Sleep(100 * time.Millisecond)
			if p.Now() > 5*time.Minute {
				t.Error("failover never drained")
				return
			}
		}
		if a.PrimaryPath().Subnet() == 0 {
			t.Error("primary path did not fail over off subnet 0")
		}
		if a.Statistics().Failovers == 0 {
			t.Error("no failover recorded")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != rounds {
		t.Fatalf("received %d of %d despite multihoming", received, rounds)
	}
}

func TestRetransmitStatsUnderLoss(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.03
	k, sa, sb, _ := pair(15, lp, Config{SndBuf: 220 << 10, RcvBuf: 220 << 10})
	srv, _ := sb.SocketConfig(5000, Config{SndBuf: 220 << 10, RcvBuf: 220 << 10})
	srv.Listen()
	var cli *Socket
	var id AssocID
	k.Spawn("server", func(p *sim.Proc) {
		n := 0
		for n < 50 {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyNone {
				n++
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ = sa.SocketConfig(0, Config{SndBuf: 220 << 10, RcvBuf: 220 << 10})
		var err error
		id, err = cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 50; i++ {
			if err := cli.SendMsg(p, id, uint16(i%10), 0, make([]byte, 8000)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := cli.Assoc(id)
	if st != nil {
		t.Log("assoc still open") // closed assocs are removed; stats were checked live
	}
}

func TestAutoclose(t *testing.T) {
	cfg := Config{Autoclose: 2 * time.Second}
	k, sa, sb, _ := pair(16, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	closed := false
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		cli.SendMsg(p, id, 0, 0, []byte("hi"))
		for {
			m, err := cli.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyShutdownComplete {
				closed = true
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		// The server proc also ends via autoclose; deadlock should not
		// occur because RecvMsg waiters get ShutdownComplete.
		t.Fatal(err)
	}
	if !closed {
		t.Fatal("idle association was not autoclosed")
	}
}

func TestChecksumVerification(t *testing.T) {
	cfg := Config{ChecksumVerify: true}
	k, sa, sb, _ := pair(17, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	got := false
	k.Spawn("server", func(p *sim.Proc) {
		for {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyNone && string(m.Data) == "checksummed" {
				got = true
				return
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		cli.SendMsg(p, id, 0, 0, []byte("checksummed"))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("message did not survive checksum verification")
	}
}

func TestDeterminism(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.02
	d1 := sendRecvMany(t, 42, lp, Config{}, 50, 3000, 5)
	d2 := sendRecvMany(t, 42, lp, Config{}, 50, 3000, 5)
	if d1 != d2 {
		t.Fatalf("nondeterministic: %v vs %v", d1, d2)
	}
}
