package sctp

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Conn satisfies the shared nonblocking endpoint contract.
var _ transport.Endpoint = (*Conn)(nil)

// This file implements the one-to-one socket style of paper §2.1: "a
// single SCTP association ... developed to allow porting of existing
// TCP applications to SCTP with little effort." A Conn wraps a
// dedicated one-to-many socket holding exactly one association.

// Conn is a one-to-one style SCTP endpoint: one socket, one
// association, TCP-like usage but message-oriented and multistreamed.
type Conn struct {
	sock  *Socket
	assoc AssocID
	peer  netsim.Addr
}

// Dial establishes a one-to-one association with the peer reachable at
// raddrs (all its addresses, for multihoming), blocking until the
// handshake completes.
func (s *Stack) Dial(p *sim.Proc, raddrs []netsim.Addr, rport uint16, streams int) (*Conn, error) {
	return s.DialConfig(p, s.cfg, raddrs, rport, streams)
}

// DialConfig is Dial with an explicit socket configuration.
func (s *Stack) DialConfig(p *sim.Proc, cfg Config, raddrs []netsim.Addr, rport uint16, streams int) (*Conn, error) {
	sk, err := s.SocketConfig(0, cfg)
	if err != nil {
		return nil, err
	}
	id, err := sk.Connect(p, raddrs, rport, streams)
	if err != nil {
		sk.Close()
		return nil, err
	}
	return &Conn{sock: sk, assoc: id, peer: raddrs[0]}, nil
}

// OneToOneListener accepts inbound associations, handing each out as
// its own Conn (on the shared listening socket, which is how lksctp's
// one-to-one accept() behaves underneath).
type OneToOneListener struct {
	sock *Socket
}

// ListenOneToOne starts accepting one-to-one style associations on
// port.
func (s *Stack) ListenOneToOne(port uint16) (*OneToOneListener, error) {
	return s.ListenOneToOneConfig(port, s.cfg)
}

// ListenOneToOneConfig is ListenOneToOne with an explicit socket
// configuration.
func (s *Stack) ListenOneToOneConfig(port uint16, cfg Config) (*OneToOneListener, error) {
	sk, err := s.SocketConfig(port, cfg)
	if err != nil {
		return nil, err
	}
	sk.Listen()
	return &OneToOneListener{sock: sk}, nil
}

// SetNotify registers fn on the shared listening socket: it fires when
// a new association or message arrives (see Socket.SetNotify). Events
// for associations claimed by an accepted Conn's own SetNotify do not
// reach this hook.
func (l *OneToOneListener) SetNotify(fn func(transport.Ready)) { l.sock.SetNotify(fn) }

// Config returns the listening socket's effective configuration
// (defaults applied).
func (l *OneToOneListener) Config() Config { return l.sock.Config() }

// Accept blocks until an inbound association is established and
// returns it as a Conn. Messages for other associations continue to
// queue on the shared socket; each Conn filters its own (adequate for
// the porting-aid role this style plays).
func (l *OneToOneListener) Accept(p *sim.Proc) (*Conn, error) {
	for {
		// Take only the COMM_UP event, leaving queued data untouched
		// (and in order) for the Conns that own it.
		for i, m := range l.sock.rq {
			if m.Notification == NotifyCommUp {
				l.sock.rq = append(l.sock.rq[:i], l.sock.rq[i+1:]...)
				return &Conn{sock: l.sock, assoc: m.Assoc, peer: m.Peer}, nil
			}
		}
		if l.sock.closed {
			return nil, ErrClosed
		}
		l.sock.rcvCond.Wait(p)
	}
}

// TryAccept is the nonblocking variant of Accept: it returns the next
// inbound association as a Conn, ErrWouldBlock when none is pending,
// or ErrClosed once the listener is closed.
func (l *OneToOneListener) TryAccept() (*Conn, error) {
	for i, m := range l.sock.rq {
		if m.Notification == NotifyCommUp {
			l.sock.rq = append(l.sock.rq[:i], l.sock.rq[i+1:]...)
			return &Conn{sock: l.sock, assoc: m.Assoc, peer: m.Peer}, nil
		}
	}
	if l.sock.closed {
		return nil, ErrClosed
	}
	return nil, ErrWouldBlock
}

// Close stops the listener (and every association on it).
func (l *OneToOneListener) Close() { l.sock.Close() }

// SendMsg sends a message on the association.
func (c *Conn) SendMsg(p *sim.Proc, stream uint16, data []byte) error {
	return c.sock.SendMsg(p, c.assoc, stream, 0, data)
}

// TrySendMsg queues a whole message with an explicit payload protocol
// identifier, or fails with ErrWouldBlock/ErrMsgSize; the nonblocking
// variant the RPI modules use.
func (c *Conn) TrySendMsg(stream uint16, ppid uint32, data []byte) error {
	return c.sock.TrySendMsg(c.assoc, stream, ppid, data)
}

// TryRecvMsg returns this association's next data message without
// blocking, leaving other associations' messages on the shared socket
// queue. Association events map to errors (ErrAborted, ErrClosed);
// uninteresting notifications are consumed. ErrWouldBlock means
// nothing is pending.
func (c *Conn) TryRecvMsg() (*Message, error) {
	for {
		found := -1
		for i, m := range c.sock.rq {
			if m.Assoc == c.assoc {
				found = i
				break
			}
		}
		if found < 0 {
			if c.sock.closed {
				return nil, ErrClosed
			}
			return nil, ErrWouldBlock
		}
		m := c.sock.rq[found]
		c.sock.rq = append(c.sock.rq[:found], c.sock.rq[found+1:]...)
		switch m.Notification {
		case NotifyNone:
			if a := c.sock.byID[m.Assoc]; a != nil {
				a.creditRwnd(len(m.Data))
			}
			return m, nil
		case NotifyCommLost:
			return nil, ErrAborted
		case NotifyShutdownComplete:
			return nil, ErrClosed
		default:
			continue // other notifications are uninteresting here
		}
	}
}

// Readable reports whether a TryRecvMsg would return something (a
// message or event for this association, or a terminal socket state).
func (c *Conn) Readable() bool {
	if c.sock.closed {
		return true
	}
	for _, m := range c.sock.rq {
		if m.Assoc == c.assoc {
			return true
		}
	}
	return false
}

// Writable reports whether the association can accept outbound data.
func (c *Conn) Writable() bool {
	a := c.sock.byID[c.assoc]
	return a != nil && a.Established() && a.SndBufAvailable() > 0
}

// SetNotify registers fn for this association's events. Accepted Conns
// share the listening socket, so the registration is per-association
// (Socket.SetAssocNotify): each Conn gets exactly its own edges, and
// unclaimed associations keep waking the listener's socket-level hook.
func (c *Conn) SetNotify(fn func(transport.Ready)) { c.sock.SetAssocNotify(c.assoc, fn) }

// RecvMsg receives the next message for this association, leaving
// messages belonging to other associations on the shared socket queue.
func (c *Conn) RecvMsg(p *sim.Proc) (*Message, error) {
	for {
		// Scan the socket queue for this association's next message.
		found := -1
		for i, m := range c.sock.rq {
			if m.Assoc == c.assoc {
				found = i
				break
			}
		}
		if found >= 0 {
			m := c.sock.rq[found]
			c.sock.rq = append(c.sock.rq[:found], c.sock.rq[found+1:]...)
			switch m.Notification {
			case NotifyNone:
				if a := c.sock.byID[m.Assoc]; a != nil {
					a.creditRwnd(len(m.Data))
				}
				return m, nil
			case NotifyCommLost:
				return nil, ErrAborted
			case NotifyShutdownComplete:
				return nil, ErrClosed
			default:
				continue // other notifications are uninteresting here
			}
		}
		if c.sock.closed {
			return nil, ErrClosed
		}
		c.sock.rcvCond.Wait(p)
	}
}

// Peer returns the peer's primary address.
func (c *Conn) Peer() netsim.Addr { return c.peer }

// Assoc returns the underlying association id.
func (c *Conn) Assoc() AssocID { return c.assoc }

// NumStreams returns the negotiated outbound stream count.
func (c *Conn) NumStreams() int {
	if a := c.sock.byID[c.assoc]; a != nil {
		return a.NumOutStreams()
	}
	return 0
}

// Close gracefully shuts the association down; if this Conn owns a
// dedicated socket (Dial side), the socket goes with it.
func (c *Conn) Close() {
	c.sock.CloseAssoc(c.assoc)
}

// Kill destroys the association silently — no wire traffic, as if the
// endpoint crashed. A dedicated dial-side socket is released with it.
func (c *Conn) Kill() {
	c.sock.KillAssoc(c.assoc)
	if !c.sock.listening {
		c.sock.Close()
	}
}

// Abort tears the association down abortively, notifying the peer with
// an ABORT chunk. A dedicated dial-side socket is released with it.
func (c *Conn) Abort() {
	c.sock.Abort(c.assoc, "aborted by application")
	if !c.sock.listening {
		c.sock.Close()
	}
}
