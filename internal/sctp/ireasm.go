package sctp

import (
	"repro/internal/seqnum"
	"repro/internal/wire"
)

// ipartial reassembles one interleaved user message, identified by
// (stream, MID). Unlike legacy DATA reassembly, fragments are keyed by
// FSN rather than TSN, so fragments of different messages may arrive
// interleaved in the TSN space.
type ipartial struct {
	stream uint16
	mid    seqnum.MID
	ppid   uint32
	frags  map[seqnum.FSN]frag
	haveB  bool
	haveE  bool
	eFSN   seqnum.FSN
	bytes  int
}

func (pm *ipartial) releaseFrags() {
	for fsn, f := range pm.frags {
		if f.buf != nil {
			f.buf.Release()
		}
		delete(pm.frags, fsn)
	}
}

// ikey builds the reassembly map key for (stream, MID).
func ikey(stream uint16, mid seqnum.MID) uint64 {
	return uint64(stream)<<32 | uint64(uint32(mid))
}

// ireasm is the RFC 8260 receive side: per-(stream, MID) fragment
// reassembly plus per-stream ordered delivery by MID. It is standalone
// (fed chunks, emits Messages) so the fuzz targets can drive it without
// an association; TSN-level dedup and buffer accounting stay with the
// caller.
//
// Robustness contract, independent of the sender: the first chunk seen
// for a given (stream, MID, FSN) wins, the first end fragment fixes the
// message length and later or conflicting fragments beyond it are
// dropped, and each message is delivered at most once, in per-stream
// MID order 0,1,2,...
type ireasm struct {
	partial     map[uint64]*ipartial
	expectedMID []seqnum.MID
	reorder     []map[seqnum.MID]*Message
}

func (ir *ireasm) init(streams int) {
	ir.partial = make(map[uint64]*ipartial)
	ir.expectedMID = make([]seqnum.MID, streams)
	ir.reorder = make([]map[seqnum.MID]*Message, streams)
	for i := range ir.reorder {
		ir.reorder[i] = make(map[seqnum.MID]*Message)
	}
}

// release drops all reassembly state (association teardown or restart).
// Pending reorder messages hold only wire-pool buffers, which the pool
// reclaims; packet references live in the fragment maps and are
// released here.
func (ir *ireasm) release() {
	for key, pm := range ir.partial {
		pm.releaseFrags()
		delete(ir.partial, key)
	}
	for i := range ir.reorder {
		ir.reorder[i] = make(map[seqnum.MID]*Message)
	}
	for i := range ir.expectedMID {
		ir.expectedMID[i] = 0
	}
}

// feed accepts one I-DATA chunk (already TSN-deduplicated by the
// caller) and invokes deliver for every message that becomes
// deliverable in per-stream MID order. The chunk's Stream must be in
// range and a begin fragment must carry FSN 0, both guaranteed by the
// codec. When the chunk aliases a pooled packet (c.buf non-nil) a
// reference is retained for as long as the fragment is held.
func (ir *ireasm) feed(c *chunk, deliver func(*Message)) {
	begin := c.Flags&flagBeginFragment != 0
	end := c.Flags&flagEndFragment != 0
	if begin && end {
		// Unfragmented message: skip the fragment map entirely.
		ir.deliverOrdered(&Message{
			Stream: c.Stream,
			MID:    uint32(c.MID),
			PPID:   c.PPID,
			Data:   append(wire.GetBuf(len(c.Data))[:0], c.Data...),
		}, deliver)
		return
	}
	key := ikey(c.Stream, c.MID)
	pm := ir.partial[key]
	if pm == nil {
		// A message already delivered for this (stream, MID) cannot
		// resurface: the caller's TSN dedup rejects replayed chunks, and
		// MIDs below expectedMID reach the reorder map, not here... but a
		// hostile sender can still fabricate one. Delivery order is
		// enforced by deliverOrdered either way.
		pm = &ipartial{
			stream: c.Stream, mid: c.MID,
			frags: make(map[seqnum.FSN]frag),
		}
		ir.partial[key] = pm
	}
	fsn := c.FSN
	if begin {
		fsn = 0 // the wire carries PPID, not FSN, on the begin fragment
		if !pm.haveB {
			pm.haveB = true
			pm.ppid = c.PPID
		}
	}
	if pm.haveE && fsn.Greater(pm.eFSN) {
		return // beyond the fixed end: drop
	}
	if _, dup := pm.frags[fsn]; !dup {
		if c.buf != nil {
			c.buf.Retain()
		}
		pm.frags[fsn] = frag{data: c.Data, buf: c.buf}
		pm.bytes += len(c.Data)
	}
	if end && !pm.haveE {
		pm.haveE = true
		pm.eFSN = fsn
		// Discard any stray fragments beyond the now-known end so the
		// completeness count stays exact.
		for f, fr := range pm.frags {
			if f.Greater(pm.eFSN) {
				if fr.buf != nil {
					fr.buf.Release()
				}
				pm.bytes -= len(fr.data)
				delete(pm.frags, f)
			}
		}
	}
	if pm.haveB && pm.haveE && uint64(len(pm.frags)) == uint64(pm.eFSN)+1 {
		delete(ir.partial, key)
		ir.complete(pm, deliver)
	}
}

// complete assembles a finished message and hands it to ordered
// delivery.
func (ir *ireasm) complete(pm *ipartial, deliver func(*Message)) {
	data := wire.GetBuf(pm.bytes)[:0]
	for fsn := seqnum.FSN(0); ; fsn = fsn.Add(1) {
		f := pm.frags[fsn]
		data = append(data, f.data...)
		if f.buf != nil {
			f.buf.Release()
		}
		if fsn == pm.eFSN {
			break
		}
	}
	ir.deliverOrdered(&Message{
		Stream: pm.stream,
		MID:    uint32(pm.mid),
		PPID:   pm.ppid,
		Data:   data,
	}, deliver)
}

// deliverOrdered releases messages in per-stream MID order, parking
// early arrivals in the reorder map. Duplicate or stale MIDs (already
// delivered) are dropped here, which is what makes double delivery
// impossible even for fabricated input.
func (ir *ireasm) deliverOrdered(m *Message, deliver func(*Message)) {
	st := int(m.Stream)
	mid := seqnum.MID(m.MID)
	if mid.Less(ir.expectedMID[st]) {
		// Already delivered: the reassembled payload is pooled and this
		// copy is never going anywhere, so recycle it here or leak it.
		wire.PutBuf(m.Data)
		return
	}
	if mid != ir.expectedMID[st] {
		if _, dup := ir.reorder[st][mid]; dup {
			// Duplicate of a parked early arrival: drop this copy's
			// buffer, the parked one keeps ownership.
			wire.PutBuf(m.Data)
			return
		}
		ir.reorder[st][mid] = m
		return
	}
	deliver(m)
	ir.expectedMID[st] = ir.expectedMID[st].Add(1)
	for {
		next, ok := ir.reorder[st][ir.expectedMID[st]]
		if !ok {
			break
		}
		delete(ir.reorder[st], ir.expectedMID[st])
		deliver(next)
		ir.expectedMID[st] = ir.expectedMID[st].Add(1)
	}
}
