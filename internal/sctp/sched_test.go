package sctp

import (
	"testing"

	"repro/internal/seqnum"
)

// schedRand is a tiny deterministic xorshift PRNG for the property
// tests (no math/rand: the simlint determinism rules apply to test
// code in this package too, and a fixed seed keeps failures
// reproducible by construction).
type schedRand uint64

func (r *schedRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = schedRand(x)
	return x
}

func (r *schedRand) intn(n int) int { return int(r.next() % uint64(n)) }

// mkChunk builds a minimal schedulable chunk for stream st with the
// given FSN and size.
func mkChunk(st uint16, fsn uint32, size int) *outChunk {
	return &outChunk{
		c:    chunk{Type: ctIData, Stream: st, FSN: seqnum.FSN(fsn)},
		size: size,
	}
}

// popAll drains the scheduler via pop(), returning the service order.
func popAll(s *sched) []*outChunk {
	var out []*outChunk
	for s.pending() > 0 {
		oc := s.pop()
		if oc == nil {
			break
		}
		out = append(out, oc)
	}
	return out
}

// TestSchedFIFOOrder: the default policy must reproduce global arrival
// order exactly — the property that keeps I-DATA-with-FIFO bitwise
// compatible with legacy wire ordering.
func TestSchedFIFOOrder(t *testing.T) {
	s := newSched(SchedFIFO, 4)
	r := schedRand(1)
	var want []*outChunk
	for i := 0; i < 200; i++ {
		oc := mkChunk(uint16(r.intn(4)), uint32(i), 100)
		want = append(want, oc)
		s.push(oc.c.Stream, oc)
	}
	got := popAll(s)
	if len(got) != len(want) {
		t.Fatalf("popped %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: wrong chunk (stream %d, want stream %d)",
				i, got[i].c.Stream, want[i].c.Stream)
		}
	}
}

// TestSchedPerStreamFSNOrder: under every policy, one stream's chunks
// must leave in push (FSN) order — interleaving happens only across
// streams, never within one. Random pushes and pops are interleaved
// so queues grow and drain repeatedly.
func TestSchedPerStreamFSNOrder(t *testing.T) {
	for _, pol := range []SchedPolicy{SchedFIFO, SchedRoundRobin, SchedWeightedFair, SchedPriority} {
		t.Run(pol.String(), func(t *testing.T) {
			const streams = 5
			s := newSched(pol, streams)
			s.setPriority(1, 2)
			s.setPriority(3, 1)
			s.setWeight(2, 4)
			r := schedRand(7 + schedRand(pol))
			var nextFSN [streams]uint32
			var lastPopped [streams]int64
			for i := range lastPopped {
				lastPopped[i] = -1
			}
			for round := 0; round < 2000; round++ {
				if r.intn(2) == 0 {
					st := uint16(r.intn(streams))
					s.push(st, mkChunk(st, nextFSN[st], 50+r.intn(1400)))
					nextFSN[st]++
				} else if s.pending() > 0 {
					oc := s.pop()
					st := oc.c.Stream
					if int64(uint32(oc.c.FSN)) != lastPopped[st]+1 {
						t.Fatalf("stream %d popped FSN %d after %d",
							st, oc.c.FSN, lastPopped[st])
					}
					lastPopped[st]++
				}
			}
		})
	}
}

// TestSchedRRNoStarvation: with K streams backlogged, round robin may
// make a stream wait at most K-1 pops between its turns — no stream
// starves while it has work.
func TestSchedRRNoStarvation(t *testing.T) {
	const streams = 6
	s := newSched(SchedRoundRobin, streams)
	r := schedRand(11)
	var fsn [streams]uint32
	// Uneven backlogs: stream 0 has 10× the chunks of stream 5.
	for st := 0; st < streams; st++ {
		n := 10 * (streams - st)
		for i := 0; i < n; i++ {
			s.push(uint16(st), mkChunk(uint16(st), fsn[st], 100+r.intn(1000)))
			fsn[st]++
		}
	}
	remaining := make([]int, streams)
	for st := 0; st < streams; st++ {
		remaining[st] = 10 * (streams - st)
	}
	sincePop := make([]int, streams)
	for s.pending() > 0 {
		oc := s.pop()
		st := int(oc.c.Stream)
		remaining[st]--
		sincePop[st] = 0
		for other := 0; other < streams; other++ {
			if other == st || remaining[other] == 0 {
				continue
			}
			sincePop[other]++
			if sincePop[other] > streams-1 {
				t.Fatalf("stream %d starved: %d pops since its last turn",
					other, sincePop[other])
			}
		}
	}
}

// TestSchedPriorityStrict: a pop must never serve a class while a
// more urgent class has a runnable chunk. Driven through pop() (not
// peek), where selection and removal are atomic, so the invariant is
// exact.
func TestSchedPriorityStrict(t *testing.T) {
	const streams = 6
	s := newSched(SchedPriority, streams)
	classOf := [streams]uint8{0, 1, 2, 0, 1, 2}
	for st, cl := range classOf {
		s.setPriority(uint16(st), cl)
	}
	r := schedRand(13)
	var fsn [streams]uint32
	pendingByClass := map[uint8]int{}
	for round := 0; round < 3000; round++ {
		if r.intn(3) > 0 {
			st := uint16(r.intn(streams))
			s.push(st, mkChunk(st, fsn[st], 100))
			fsn[st]++
			pendingByClass[classOf[st]]++
		} else if s.pending() > 0 {
			oc := s.pop()
			cl := classOf[oc.c.Stream]
			for better := uint8(0); better < cl; better++ {
				if pendingByClass[better] > 0 {
					t.Fatalf("served class %d while class %d had %d chunks pending",
						cl, better, pendingByClass[better])
				}
			}
			pendingByClass[cl]--
		}
	}
}

// TestSchedPriorityIntraClassRR: streams of equal class are served
// round-robin, so one high-priority stream cannot starve another.
func TestSchedPriorityIntraClassRR(t *testing.T) {
	s := newSched(SchedPriority, 3)
	for st := uint16(0); st < 3; st++ {
		s.setPriority(st, 1)
		for i := uint32(0); i < 50; i++ {
			s.push(st, mkChunk(st, i, 100))
		}
	}
	since := [3]int{}
	left := [3]int{50, 50, 50}
	for s.pending() > 0 {
		oc := s.pop()
		st := int(oc.c.Stream)
		left[st]--
		since[st] = 0
		for o := 0; o < 3; o++ {
			if o == st || left[o] == 0 {
				continue
			}
			since[o]++
			if since[o] > 2 {
				t.Fatalf("equal-class stream %d waited %d pops", o, since[o])
			}
		}
	}
}

// TestSchedWFQConvergence: with weights 1:2:4 and everyone
// permanently backlogged with equal-size chunks, served byte shares
// must converge to the weight ratio within the DRR bound (one
// max-size chunk per stream per window).
func TestSchedWFQConvergence(t *testing.T) {
	const streams = 3
	weights := [streams]int{1, 2, 4}
	s := newSched(SchedWeightedFair, streams)
	for st, w := range weights {
		s.setWeight(uint16(st), w)
	}
	const chunkSize = 1000
	var fsn [streams]uint32
	var depth [streams]int
	backlog := func() {
		// Keep every queue deep enough that no stream ever drains.
		for st := uint16(0); st < streams; st++ {
			for depth[st] < 32 {
				s.push(st, mkChunk(st, fsn[st], chunkSize))
				fsn[st]++
				depth[st]++
			}
		}
	}
	served := [streams]int{}
	backlog()
	const rounds = 2800
	for i := 0; i < rounds; i++ {
		oc := s.pop()
		served[oc.c.Stream] += oc.size
		depth[oc.c.Stream]--
		backlog()
	}
	totalW := 0
	for _, w := range weights {
		totalW += w
	}
	totalB := rounds * chunkSize
	for st, w := range weights {
		want := totalB * w / totalW
		got := served[st]
		// DRR fairness bound over the full window: within one
		// weight-share of a quantum-plus-max-chunk per rotation; with
		// this many rounds a generous ±10% envelope is conservative.
		slack := totalB / 10
		if got < want-slack || got > want+slack {
			t.Fatalf("stream %d (weight %d) served %d bytes, want %d ± %d",
				st, w, got, want, slack)
		}
	}
}

// TestSchedPeekReserves: peek must reserve the selection so sizing a
// packet and then popping commits the same chunk, even when something
// more urgent arrives in between (the documented one-chunk bounded
// inversion).
func TestSchedPeekReserves(t *testing.T) {
	s := newSched(SchedPriority, 2)
	s.setPriority(0, 2)
	s.setPriority(1, 0)
	low := mkChunk(0, 0, 100)
	s.push(0, low)
	if got := s.peek(); got != low {
		t.Fatalf("peek returned %p, want the only chunk", got)
	}
	urgent := mkChunk(1, 0, 100)
	s.push(1, urgent)
	if got := s.pop(); got != low {
		t.Fatalf("pop after peek returned stream %d, want reserved stream 0", got.c.Stream)
	}
	if got := s.pop(); got != urgent {
		t.Fatalf("second pop returned stream %d, want stream 1", got.c.Stream)
	}
	if s.pending() != 0 {
		t.Fatalf("pending = %d after draining", s.pending())
	}
}

// TestSchedDrainReturnsEverything: drain must hand back exactly the
// queued chunks — including a peek-reserved one — and reset state.
func TestSchedDrainReturnsEverything(t *testing.T) {
	for _, pol := range []SchedPolicy{SchedFIFO, SchedRoundRobin, SchedWeightedFair, SchedPriority} {
		s := newSched(pol, 3)
		pushed := map[*outChunk]bool{}
		r := schedRand(17)
		for i := 0; i < 40; i++ {
			st := uint16(r.intn(3))
			oc := mkChunk(st, uint32(i), 100)
			pushed[oc] = true
			s.push(st, oc)
		}
		s.peek() // reserve one
		drained := 0
		s.drain(func(oc *outChunk) {
			if !pushed[oc] {
				t.Fatalf("%v: drained a chunk that was never pushed", pol)
			}
			delete(pushed, oc)
			drained++
		})
		if len(pushed) != 0 {
			t.Fatalf("%v: %d chunks lost in drain", pol, len(pushed))
		}
		if s.pending() != 0 {
			t.Fatalf("%v: pending = %d after drain", pol, s.pending())
		}
		if s.pop() != nil {
			t.Fatalf("%v: pop returned a chunk after drain", pol)
		}
	}
}
