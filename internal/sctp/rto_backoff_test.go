package sctp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// backoffCfg pins the timer arithmetic: the RTO starts at the 200 ms
// floor and may double at most three times before the 1600 ms ceiling.
func backoffCfg() Config {
	return Config{
		RTOInitial:      200 * time.Millisecond,
		RTOMin:          200 * time.Millisecond,
		RTOMax:          1600 * time.Millisecond,
		AssocMaxRetrans: 5,
		HBDisable:       true,
	}
}

// TestShutdownRetransmitBackoff pins the SHUTDOWN retransmission
// schedule to the RFC 4960 §6.3.3 E2 rule: each expiry doubles the RTO,
// clamped to RTOMax, until Assoc.Max.Retrans expiries give up with
// ErrTimeout (plus one final ABORT). With a 200 ms floor and a 1600 ms
// ceiling the send gaps must be exactly 200, 400, 800, 1600, 1600,
// 1600 ms — before this rule the timer re-armed at a fixed RTO and a
// dead peer was probed at a constant rate forever.
func TestShutdownRetransmitBackoff(t *testing.T) {
	cfg := backoffCfg()
	k, sa, sb, net := pair(21, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	k.Spawn("server", func(p *sim.Proc) {
		for {
			m, err := srv.RecvMsg(p)
			if err != nil || m.Notification == NotifyCommLost {
				return
			}
		}
	})

	var sendTimes []time.Duration
	capturing := false
	net.Trace = func(ev string, pkt *netsim.Packet) {
		if capturing && ev == "send" && pkt.Src == netsim.MakeAddr(0, 1) {
			sendTimes = append(sendTimes, k.Now())
		}
	}

	var lostErr error
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		// Partition, then shut down: every packet the client sends from
		// here on is a SHUTDOWN retransmission (heartbeats are off), and
		// the last is the give-up ABORT.
		net.SetSubnetDown(0, true)
		capturing = true
		cli.CloseAssoc(id)
		for {
			m, err := cli.RecvMsg(p)
			if err != nil {
				t.Errorf("recv: %v", err)
				break
			}
			if m.Notification == NotifyCommLost {
				lostErr = m.Err
				break
			}
		}
		// Release the server so the simulation quiesces.
		for _, sid := range srv.Assocs() {
			srv.KillAssoc(sid)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if lostErr != ErrTimeout {
		t.Fatalf("shutdown gave up with %v, want ErrTimeout", lostErr)
	}
	want := []time.Duration{200, 400, 800, 1600, 1600, 1600}
	if len(sendTimes) != len(want)+1 {
		t.Fatalf("client sent %d packets after partition, want %d:\n%v",
			len(sendTimes), len(want)+1, sendTimes)
	}
	for i, w := range want {
		if got := sendTimes[i+1] - sendTimes[i]; got != w*time.Millisecond {
			t.Errorf("retransmit gap %d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

// TestHeartbeatMissBackoff pins the heartbeat-miss rule: a probe with
// no HEARTBEAT-ACK within the path RTO doubles that RTO (clamped to
// RTOMax), so successive probes of a dead path space out exponentially
// instead of hammering it at the floor rate.
func TestHeartbeatMissBackoff(t *testing.T) {
	cfg := backoffCfg()
	cfg.HBDisable = false
	cfg.HBInterval = 250 * time.Millisecond
	cfg.AssocMaxRetrans = 50
	cfg.PathMaxRetrans = 50
	k, sa, sb, net := pair(22, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	k.Spawn("server", func(p *sim.Proc) {
		for {
			m, err := srv.RecvMsg(p)
			if err != nil || m.Notification == NotifyCommLost {
				return
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		a := cli.Assoc(id)
		net.SetSubnetDown(0, true)

		// Sample the path RTO as heartbeat misses double it toward the
		// clamp. Polling in virtual time is deterministic.
		var rtos []time.Duration
		last := a.paths[a.primary].rto
		start := p.Now()
		for len(rtos) < 3 && p.Now()-start < 30*time.Second {
			p.Sleep(10 * time.Millisecond)
			if cur := a.paths[a.primary].rto; cur != last {
				rtos = append(rtos, cur)
				last = cur
			}
		}
		want := []time.Duration{400, 800, 1600}
		for i, w := range want {
			if i >= len(rtos) || rtos[i] != w*time.Millisecond {
				t.Errorf("rto after %d misses = %v, want %v", i+1, rtos, want)
				break
			}
		}

		// Clamp: further misses keep probing but the RTO stays at RTOMax.
		sent := a.Statistics().HeartbeatsSent
		p.Sleep(5 * time.Second)
		if a.state == aEstablished {
			if got := a.paths[a.primary].rto; got != cfg.RTOMax {
				t.Errorf("rto after clamp = %v, want %v", got, cfg.RTOMax)
			}
			if a.Statistics().HeartbeatsSent == sent {
				t.Error("no heartbeat probes after the RTO clamp")
			}
		}

		for _, sid := range srv.Assocs() {
			srv.KillAssoc(sid)
		}
		cli.KillAssoc(id)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
