package sctp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestSackAfterT3KeepsFlightAccounting pins the per-chunk flight
// accounting against the double-decrement found by the chaos corpus
// (sctp seed 31, a single self-healing iface outage): when T3 requeues
// outstanding chunks it zeroes the path's flight, so a SACK that later
// acknowledges a chunk still parked in the retransmission queue must
// NOT subtract that chunk's bytes again. The stolen bytes belonged to
// other chunks genuinely in flight; once flight hit zero with the
// retransmission queue empty, processSack stopped the T3 timer and the
// still-unacked chunks were stranded forever (an MPI-level hang).
//
// The sequence, driven synchronously at one virtual instant on a real
// established association with the network blackholed:
//
//	send M1 M2 M3  -> all in flight
//	onT3            -> all requeued, flight=0, cwnd=1 MTU,
//	                   M1 M2 retransmitted (re-entering flight),
//	                   M3 parked in rtxQ
//	SACK cum=M1, gap=M3
//
// M1's bytes leave flight (it was retransmitted: genuinely in flight);
// M3's must not (parked, its bytes are not in flight). Flight must end
// at exactly M2's size, and a duplicate SACK must leave the T3 timer
// armed so M2 is eventually retransmitted.
func TestSackAfterT3KeepsFlightAccounting(t *testing.T) {
	for _, mode := range []struct {
		name  string
		idata bool
	}{{"data", false}, {"idata", true}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := Config{HBDisable: true, IData: mode.idata}
			k, sa, sb, net := pair(37, lan(), cfg)
			srv, _ := sb.SocketConfig(5000, cfg)
			srv.Listen()
			k.Spawn("server", func(p *sim.Proc) {
				for {
					m, err := srv.RecvMsg(p)
					if err != nil || m.Notification == NotifyCommLost {
						return
					}
				}
			})
			k.Spawn("client", func(p *sim.Proc) {
				cli, _ := sa.SocketConfig(0, cfg)
				id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
				if err != nil {
					t.Error(err)
					return
				}
				a := cli.Assoc(id)
				if a.useIData != mode.idata {
					t.Errorf("useIData = %v, want %v", a.useIData, mode.idata)
				}
				// Blackhole the network: every send from here on is
				// dropped, so the association state only changes through
				// the calls below.
				net.SetSubnetDown(0, true)

				const msg = 1400 // one chunk per message, under the MTU
				tsn0 := a.nextTSN
				data := make([]byte, msg)
				for i := 0; i < 3; i++ {
					if err := a.trySend(0, 0, data); err != nil {
						t.Errorf("send %d: %v", i, err)
					}
				}
				pt := a.paths[a.primary]
				if pt.flight != 3*msg {
					t.Fatalf("flight after sends = %d, want %d", pt.flight, 3*msg)
				}

				// T3: everything outstanding is requeued and flight is
				// zeroed; the collapsed window (1 MTU) lets the immediate
				// retransmission pass re-send M1 and M2 but parks M3.
				a.onT3(a.primary)
				if pt.flight != 2*msg {
					t.Fatalf("flight after T3 = %d, want %d (M1+M2 retransmitted, M3 parked)",
						pt.flight, 2*msg)
				}
				if len(a.rtxQ) != 1 || a.rtxQ[0].c.TSN != tsn0.Add(2) {
					t.Fatalf("rtxQ after T3 = %d chunks, want exactly the parked M3", len(a.rtxQ))
				}

				// SACK: cum acks M1 (in flight — its bytes leave), the
				// gap block acks the parked M3 (not in flight — its bytes
				// must not leave twice). M2 stays outstanding.
				sack := &chunk{
					Type:      ctSack,
					CumTSNAck: tsn0,
					ARwnd:     200000,
					Gaps:      []gapBlock{{Start: 2, End: 2}},
				}
				a.processSack(sack)
				if pt.flight != msg {
					t.Errorf("flight after SACK = %d, want %d (M2 still outstanding)",
						pt.flight, msg)
				}
				inFlightSum := 0
				for _, oc := range a.inflight {
					if oc.inFlight {
						inFlightSum += oc.size
					}
				}
				if pt.flight != inFlightSum {
					t.Errorf("flight = %d but inFlight chunks sum to %d", pt.flight, inFlightSum)
				}

				// Drain the sacked M3 from the rtx queue, then process a
				// duplicate SACK: with M2's bytes stolen, flight==0 and
				// rtxQ empty would stop the T3 timer and strand M2.
				a.transmit()
				a.processSack(sack)
				if !pt.t3.Active() {
					t.Error("T3 timer stopped with M2 still unacknowledged: M2 is stranded")
				}

				cli.KillAssoc(id)
				for _, sid := range srv.Assocs() {
					srv.KillAssoc(sid)
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
