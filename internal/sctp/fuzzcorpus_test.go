package sctp

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/netsim"
	"repro/internal/seqnum"
	"repro/internal/wire"
)

// TestGenerateFuzzCorpus (re)generates the checked-in seed corpora
// under testdata/fuzz when FUZZ_SEED_GEN=1 is set. The seeds are
// realistic wire packets and op-trains covering each chunk type and
// the interesting reassembly orderings, so -fuzz starts from live
// coverage instead of random bytes.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("FUZZ_SEED_GEN") != "1" {
		t.Skip("set FUZZ_SEED_GEN=1 to regenerate testdata/fuzz")
	}
	writeSeed := func(fuzzName, seedName string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pkt := func(chunks ...*chunk) []byte {
		p := &packet{SrcPort: 5000, DstPort: 7002, VerificationTag: 0xbeef, Chunks: chunks}
		b := encodePacket(p)
		out := append([]byte(nil), b...)
		wire.PutBuf(b)
		return out
	}

	writeSeed("FuzzChunkCodec", "data", pkt(&chunk{
		Type: ctData, Flags: flagBeginFragment | flagEndFragment,
		TSN: 100, Stream: 3, SSN: 7, PPID: 1, Data: []byte("hello world"),
	}))
	writeSeed("FuzzChunkCodec", "idata-begin", pkt(&chunk{
		Type: ctIData, Flags: flagBeginFragment,
		TSN: 200, Stream: 1, MID: 5, PPID: 2, Data: []byte("first fragment"),
	}))
	writeSeed("FuzzChunkCodec", "idata-end", pkt(&chunk{
		Type: ctIData, Flags: flagEndFragment,
		TSN: 201, Stream: 1, MID: 5, FSN: 3, Data: []byte("last fragment"),
	}))
	writeSeed("FuzzChunkCodec", "idata-bundle", pkt(
		&chunk{Type: ctIData, Flags: flagBeginFragment | flagEndFragment,
			TSN: 300, Stream: 0, MID: 1, PPID: 1, Data: []byte("whole")},
		&chunk{Type: ctSack, CumTSNAck: 299, ARwnd: 65536,
			Gaps: []gapBlock{{2, 4}}, DupTSNs: []seqnum.V{250}},
	))
	writeSeed("FuzzChunkCodec", "init", pkt(&chunk{
		Type: ctInit, InitiateTag: 0x1234, ARwnd: 220 << 10,
		OutStreams: 10, InStreams: 10, InitialTSN: 1,
		Addrs: []netsim.Addr{netsim.MakeAddr(0, 1), netsim.MakeAddr(1, 1)},
	}))
	writeSeed("FuzzChunkCodec", "init-idata", func() []byte {
		c := &chunk{
			Type: ctInit, Flags: initFlagIData, InitiateTag: 0x77,
			ARwnd: 4096, OutStreams: 4, InStreams: 4, InitialTSN: 42,
		}
		return pkt(c)
	}())
	writeSeed("FuzzChunkCodec", "heartbeat", pkt(&chunk{
		Type: ctHeartbeat, HBPath: 0x0102, HBNonce: 0xdeadbeef,
	}))
	writeSeed("FuzzChunkCodec", "abort", pkt(&chunk{
		Type: ctAbort, Flags: abortTBit, Reason: "job aborted",
	}))
	writeSeed("FuzzChunkCodec", "shutdown", pkt(
		&chunk{Type: ctShutdown, CumTSNAck: 500},
		&chunk{Type: ctShutdownAck},
		&chunk{Type: ctShutdownComplete},
	))
	// A deliberately truncated packet: exercises the short-read paths.
	full := pkt(&chunk{Type: ctData, TSN: 1, Stream: 0, Data: []byte("truncate me")})
	writeSeed("FuzzChunkCodec", "truncated", full[:len(full)-6])

	// Reassembly op-trains (see decodeReasmOps for the 5-byte format:
	// stream, mid, fsn, flags[b=1,e=2], size).
	op := func(stream, mid, fsn, flags, size byte) []byte {
		return []byte{stream, mid, fsn, flags, size}
	}
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	writeSeed("FuzzIDataReassembly", "in-order", cat(
		op(0, 0, 0, 1, 10), op(0, 0, 1, 0, 10), op(0, 0, 2, 2, 10),
	))
	writeSeed("FuzzIDataReassembly", "reversed", cat(
		op(1, 0, 2, 2, 8), op(1, 0, 1, 0, 8), op(1, 0, 0, 1, 8),
	))
	writeSeed("FuzzIDataReassembly", "interleaved-mids", cat(
		op(2, 0, 0, 1, 6), op(2, 1, 0, 1, 6), op(2, 0, 1, 2, 6),
		op(2, 1, 1, 2, 6),
	))
	writeSeed("FuzzIDataReassembly", "reorder-mids", cat(
		op(0, 1, 0, 3, 5), op(0, 0, 0, 3, 5), op(0, 2, 0, 3, 5),
	))
	writeSeed("FuzzIDataReassembly", "dup-fsn", cat(
		op(3, 0, 0, 1, 9), op(3, 0, 1, 0, 9), op(3, 0, 1, 0, 4),
		op(3, 0, 2, 2, 9),
	))
	writeSeed("FuzzIDataReassembly", "conflicting-end", cat(
		op(0, 0, 0, 1, 7), op(0, 0, 3, 2, 7), op(0, 0, 5, 2, 7),
		op(0, 0, 1, 0, 7), op(0, 0, 2, 0, 7),
	))
	writeSeed("FuzzIDataReassembly", "truncated-train", cat(
		op(1, 0, 0, 1, 12), op(1, 0, 1, 0, 12),
	))
	writeSeed("FuzzIDataReassembly", "unfragmented-burst", cat(
		op(0, 0, 0, 3, 20), op(1, 0, 0, 3, 20), op(2, 0, 0, 3, 20),
		op(3, 0, 0, 3, 20), op(0, 1, 0, 3, 20),
	))
}
