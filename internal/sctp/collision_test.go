package sctp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestInitCollision: both endpoints call Connect toward each other at
// the same instant. Per RFC 4960 §5.2.1 the two handshakes must
// converge on one association per side, and traffic must flow both
// ways afterwards.
func TestInitCollision(t *testing.T) {
	for _, seed := range []int64{51, 52, 53} {
		k, sa, sb, _ := pair(seed, lan(), Config{HBDisable: true})
		ska, _ := sa.SocketConfig(6000, Config{HBDisable: true})
		ska.Listen()
		skb, _ := sb.SocketConfig(6000, Config{HBDisable: true})
		skb.Listen()

		got := make(map[string]bool)
		runSide := func(name string, sk *Socket, peer netsim.Addr) {
			k.Spawn(name, func(p *sim.Proc) {
				id, err := sk.Connect(p, []netsim.Addr{peer}, 6000, 4)
				if err != nil {
					t.Errorf("%s connect: %v", name, err)
					return
				}
				if err := sk.SendMsg(p, id, 1, 0, []byte(name)); err != nil {
					t.Errorf("%s send: %v", name, err)
					return
				}
				for {
					m, err := sk.RecvMsg(p)
					if err != nil {
						return
					}
					if m.Notification == NotifyNone {
						got[string(m.Data)] = true
						return
					}
				}
			})
		}
		runSide("A", ska, netsim.MakeAddr(0, 2))
		runSide("B", skb, netsim.MakeAddr(0, 1))
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !got["A"] || !got["B"] {
			t.Fatalf("seed %d: traffic incomplete after collision: %v", seed, got)
		}
		// Exactly one association per socket.
		if n := len(ska.Assocs()); n != 1 {
			t.Errorf("seed %d: socket A has %d associations, want 1", seed, n)
		}
		if n := len(skb.Assocs()); n != 1 {
			t.Errorf("seed %d: socket B has %d associations, want 1", seed, n)
		}
	}
}

// TestInitCollisionUnderLoss: the collision legs themselves may be
// lost; the retry machinery must still converge.
func TestInitCollisionUnderLoss(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.1
	k, sa, sb, _ := pair(54, lp, Config{HBDisable: true})
	ska, _ := sa.SocketConfig(6000, Config{HBDisable: true})
	ska.Listen()
	skb, _ := sb.SocketConfig(6000, Config{HBDisable: true})
	skb.Listen()
	done := 0
	connect := func(name string, sk *Socket, peer netsim.Addr) {
		k.Spawn(name, func(p *sim.Proc) {
			if _, err := sk.Connect(p, []netsim.Addr{peer}, 6000, 2); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			done++
		})
	}
	connect("A", ska, netsim.MakeAddr(0, 2))
	connect("B", skb, netsim.MakeAddr(0, 1))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("%d sides connected", done)
	}
}
