// Package wire provides small helpers for serializing protocol headers
// (big-endian, network byte order) plus the CRC32c checksum used by
// SCTP packets.
package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// ErrShort is returned by a Reader when the buffer does not contain the
// requested quantity.
var ErrShort = errors.New("wire: short buffer")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32c returns the CRC32c (Castagnoli) checksum of b, as used by SCTP.
func CRC32c(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Writer appends big-endian fields to a byte slice.
type Writer struct {
	B []byte
}

// NewWriter returns a Writer with capacity hint n.
func NewWriter(n int) *Writer { return &Writer{B: make([]byte, 0, n)} }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.B = append(w.B, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.B = binary.BigEndian.AppendUint16(w.B, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.B = binary.BigEndian.AppendUint32(w.B, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.B = binary.BigEndian.AppendUint64(w.B, v) }

// Bytes appends raw bytes.
func (w *Writer) Bytes(b []byte) { w.B = append(w.B, b...) }

// Pad appends zero bytes until len(w.B) is a multiple of align.
func (w *Writer) Pad(align int) {
	for len(w.B)%align != 0 {
		w.B = append(w.B, 0)
	}
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.B) }

// Reader consumes big-endian fields from a byte slice.
type Reader struct {
	B   []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{B: b} }

// Err returns the first error encountered (ErrShort) or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.B) - r.off }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil || r.off+1 > len(r.B) {
		r.fail()
		return 0
	}
	v := r.B[r.off]
	r.off++
	return v
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if r.err != nil || r.off+2 > len(r.B) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.B[r.off:])
	r.off += 2
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil || r.off+4 > len(r.B) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.B[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil || r.off+8 > len(r.B) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.B[r.off:])
	r.off += 8
	return v
}

// Bytes reads n raw bytes. The returned slice aliases the input.
func (r *Reader) Bytes(n int) []byte {
	if n < 0 || r.err != nil || r.off+n > len(r.B) {
		r.fail()
		return nil
	}
	v := r.B[r.off : r.off+n]
	r.off += n
	return v
}

// Skip discards n bytes.
func (r *Reader) Skip(n int) {
	if n < 0 || r.err != nil || r.off+n > len(r.B) {
		r.fail()
		return
	}
	r.off += n
}

// Rest returns all unread bytes without consuming them.
func (r *Reader) Rest() []byte { return r.B[r.off:] }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShort
	}
}
