package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(32)
	w.U8(0xab)
	w.U16(0x1234)
	w.U32(0xdeadbeef)
	w.U64(0x0102030405060708)
	w.Bytes([]byte("hello"))
	w.Pad(4)

	r := NewReader(w.B)
	if v := r.U8(); v != 0xab {
		t.Errorf("U8 = %#x", v)
	}
	if v := r.U16(); v != 0x1234 {
		t.Errorf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 0x0102030405060708 {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.Bytes(5); !bytes.Equal(v, []byte("hello")) {
		t.Errorf("Bytes = %q", v)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if w.Len()%4 != 0 {
		t.Errorf("Pad left length %d", w.Len())
	}
}

func TestShortReads(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.U32()
	if r.Err() != ErrShort {
		t.Fatalf("err = %v, want ErrShort", r.Err())
	}
	// Subsequent reads keep failing without panicking.
	r.U8()
	r.Bytes(10)
	r.Skip(1)
	if r.Err() != ErrShort {
		t.Fatal("error cleared")
	}
}

func TestReaderNegativeCounts(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if b := r.Bytes(-1); b != nil || r.Err() == nil {
		t.Fatal("negative Bytes accepted")
	}
}

func TestQuickU32RoundTrip(t *testing.T) {
	f := func(vals []uint32) bool {
		w := NewWriter(4 * len(vals))
		for _, v := range vals {
			w.U32(v)
		}
		r := NewReader(w.B)
		for _, v := range vals {
			if r.U32() != v {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC32c(t *testing.T) {
	// Known value: CRC32c("123456789") = 0xE3069283.
	if got := CRC32c([]byte("123456789")); got != 0xE3069283 {
		t.Fatalf("CRC32c = %#x, want 0xE3069283", got)
	}
	if CRC32c(nil) != 0 {
		t.Fatal("CRC32c(nil) != 0")
	}
}
