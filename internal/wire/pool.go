package wire

import (
	"math/bits"
	"sync"
)

// Buffer pool: power-of-two size classes from 64 B to 512 KiB, covering
// everything from a bare ACK segment to the largest pooled message
// buffer (the paper's 300 KiB farm tasks). The pools are sync.Pool so
// independent simulation kernels running concurrently (the parallel
// sweep runner) can share them safely; within one kernel all calls are
// serialized by the cooperative scheduler anyway.
//
// Ownership contract: a buffer obtained from GetBuf is owned by the
// caller until handed off (e.g. as a pooled netsim.Packet payload);
// whoever holds the last reference returns it with PutBuf. PutBuf only
// recycles slices whose capacity is exactly a pool class, so returning
// a foreign or oversized buffer is harmless.
const (
	minPoolShift = 6  // 64 B
	maxPoolShift = 19 // 512 KiB
)

var bufPools [maxPoolShift + 1]sync.Pool

// poolShift returns the size class for a buffer of length n, or -1 when
// n is outside the pooled range.
func poolShift(n int) int {
	if n <= 0 || n > 1<<maxPoolShift {
		return -1
	}
	s := bits.Len(uint(n - 1)) // ceil(log2 n)
	if s < minPoolShift {
		s = minPoolShift
	}
	return s
}

// GetBuf returns a buffer with len n, recycled when possible. Contents
// are not zeroed.
func GetBuf(n int) []byte {
	s := poolShift(n)
	if s < 0 {
		return make([]byte, n)
	}
	if v := bufPools[s].Get(); v != nil {
		return v.([]byte)[:n]
	}
	return make([]byte, n, 1<<s)
}

// PutBuf returns a buffer to its pool. Only buffers whose capacity is
// exactly a pool class size are recycled; anything else is left to the
// garbage collector.
func PutBuf(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	s := bits.Len(uint(c)) - 1
	if s < minPoolShift || s > maxPoolShift {
		return
	}
	bufPools[s].Put(b[:c]) //nolint:staticcheck // slice converted to any; header alloc is far cheaper than the payload
}

// NewPooledWriter returns a Writer whose backing array comes from the
// buffer pool, sized for n bytes. The finished w.B should eventually be
// recycled with PutBuf (typically via a pooled packet payload). If the
// caller's size estimate was exact the final buffer keeps its pooled
// capacity class and recycling succeeds; if the writer grew past it the
// buffer is simply collected by the GC instead.
func NewPooledWriter(n int) *Writer {
	return &Writer{B: GetBuf(n)[:0]}
}
