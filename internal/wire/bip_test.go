package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

func bipDrain(b *BipBuffer) []byte {
	var out []byte
	for len(b.Head()) > 0 {
		h := b.Head()
		out = append(out, h...)
		b.Consume(len(h))
	}
	return out
}

func TestBipBasicFIFO(t *testing.T) {
	b := NewBipBuffer(1 << 10)
	if n := b.Write([]byte("hello ")); n != 6 {
		t.Fatalf("Write = %d", n)
	}
	b.Write([]byte("world"))
	if b.Len() != 11 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := bipDrain(b); string(got) != "hello world" {
		t.Fatalf("drained %q", got)
	}
	if b.Len() != 0 {
		t.Fatalf("Len after drain = %d", b.Len())
	}
}

func TestBipWrapNeverMovesBytes(t *testing.T) {
	b := NewBipBuffer(256)
	// Fill to capacity, consume the front, then write into the freed
	// space: the write must wrap into region B while the head region
	// stays put.
	big := bytes.Repeat([]byte{0xAA}, 256)
	if n := b.Write(big); n != 256 {
		t.Fatalf("fill = %d", n)
	}
	h := b.Head()
	b.Consume(100)
	if n := b.Write(bytes.Repeat([]byte{0xBB}, 60)); n != 60 {
		t.Fatalf("wrapped write = %d", n)
	}
	// Head region must still alias the original allocation (no copy).
	h2 := b.Head()
	if &h[100] != &h2[0] {
		t.Fatal("head region moved: bip buffer must not compact")
	}
	want := append(bytes.Repeat([]byte{0xAA}, 156), bytes.Repeat([]byte{0xBB}, 60)...)
	if got := bipDrain(b); !bytes.Equal(got, want) {
		t.Fatalf("drain mismatch: got %d bytes", len(got))
	}
}

func TestBipFullAtCeiling(t *testing.T) {
	b := NewBipBuffer(64)
	if n := b.Write(make([]byte, 100)); n != 64 {
		t.Fatalf("write past ceiling accepted %d, want 64", n)
	}
	if r := b.Claim(1); r != nil {
		t.Fatal("Claim on a full buffer must return nil")
	}
	b.Consume(10)
	if n := b.Write(make([]byte, 100)); n != 10 {
		t.Fatalf("write after consume accepted %d, want 10", n)
	}
}

func TestBipGrowPreservesOrder(t *testing.T) {
	b := NewBipBuffer(1 << 16)
	var want []byte
	for i := 0; i < 100; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 37)
		want = append(want, chunk...)
		b.Write(chunk)
	}
	if got := bipDrain(b); !bytes.Equal(got, want) {
		t.Fatal("grow reordered bytes")
	}
}

func TestBipGrowWhileWrapped(t *testing.T) {
	b := NewBipBuffer(1 << 12)
	b.Write(make([]byte, 256)) // exactly the initial allocation
	b.Consume(50)
	b.Write(bytes.Repeat([]byte{1}, 50)) // wraps into region B, now full
	// Next write cannot extend B (B meets head): must grow, not drop.
	if n := b.Write(bytes.Repeat([]byte{2}, 100)); n != 100 {
		t.Fatalf("grow-while-wrapped write = %d, want 100", n)
	}
	want := append(make([]byte, 206), bytes.Repeat([]byte{1}, 50)...)
	want = append(want, bytes.Repeat([]byte{2}, 100)...)
	if got := bipDrain(b); !bytes.Equal(got, want) {
		t.Fatal("grow-while-wrapped reordered bytes")
	}
}

func TestBipClaimCommitPartial(t *testing.T) {
	b := NewBipBuffer(1 << 10)
	r := b.Claim(16)
	copy(r, "abcdef")
	b.Commit(6) // commit less than claimed
	if got := string(b.Head()); got != "abcdef" {
		t.Fatalf("Head = %q", got)
	}
}

func TestBipRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBipBuffer(1 << 12)
	var ref []byte // reference queue
	var wrote, read byte
	for step := 0; step < 20000; step++ {
		if rng.Intn(2) == 0 {
			n := rng.Intn(200) + 1
			chunk := make([]byte, n)
			for i := range chunk {
				chunk[i] = wrote
				wrote++
			}
			acc := b.Write(chunk)
			ref = append(ref, chunk[:acc]...)
			wrote = chunk[0] + byte(acc) // rewind identities past what was dropped
		} else {
			h := b.Head()
			if len(h) == 0 {
				continue
			}
			n := rng.Intn(len(h)) + 1
			for i := 0; i < n; i++ {
				if h[i] != ref[i] {
					t.Fatalf("step %d: byte %d = %d, want %d", step, i, h[i], ref[i])
				}
				read++
			}
			b.Consume(n)
			ref = ref[n:]
		}
		if b.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref = %d", step, b.Len(), len(ref))
		}
	}
}
