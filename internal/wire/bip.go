package wire

// BipBuffer is a two-region ("bip") byte queue in the style of sonic's
// bip_buffer/mirrored_buffer: the writer claims a contiguous free
// region and commits what it filled; the reader peeks at the contiguous
// head region and consumes what it used. Unlike a ring buffer it never
// hands out a region that wraps, and unlike an append/slide buffer it
// never compacts: consuming from the front is pointer arithmetic, and a
// partially parsed message left in the buffer stays where it is.
//
// Region A is buf[head : head+aLen]; region B, active only when the
// writer wrapped, is buf[0 : bLen] with bLen <= head. Readers see A
// first; when A drains, B is promoted to A in O(1).
//
// The backing array grows geometrically up to max (an amortized
// allocate-and-copy, not a steady-state compaction), so idle endpoints
// pay only a small footprint while busy ones converge on a fixed
// allocation that is never copied again.
type BipBuffer struct {
	buf      []byte
	head     int // start of region A
	aLen     int // length of region A
	bLen     int // length of region B (0 = no wrap)
	max      int // capacity ceiling
	claimOff int // start of the outstanding claim, -1 if none
}

// NewBipBuffer returns a buffer that grows on demand up to max bytes.
func NewBipBuffer(max int) *BipBuffer {
	if max < 1 {
		max = 1
	}
	return &BipBuffer{max: max, claimOff: -1}
}

// Len returns the number of buffered bytes.
func (b *BipBuffer) Len() int { return b.aLen + b.bLen }

// Cap returns the current allocation; it grows toward Max as needed.
func (b *BipBuffer) Cap() int { return len(b.buf) }

// Max returns the capacity ceiling.
func (b *BipBuffer) Max() int { return b.max }

// Claim returns a writable region of up to n contiguous free bytes —
// possibly shorter, empty only when the buffer is full at its ceiling.
// Following the bip discipline, it prefers the space after region A
// unless the space before head is strictly larger, which is what keeps
// regions contiguous without ever moving buffered bytes. The claim must
// be finished with Commit before the next Claim.
func (b *BipBuffer) Claim(n int) []byte {
	if n <= 0 {
		return nil
	}
	if b.bLen > 0 {
		// Already wrapped: writes must extend region B (FIFO order), so
		// the only usable space is between B and A.
		if avail := b.head - b.bLen; avail > 0 {
			return b.claim(b.bLen, avail, n)
		}
		b.grow(n)
		if b.bLen > 0 {
			return nil // at the ceiling and truly full
		}
		// grow linearized A+B; fall through to the unwrapped path.
	}
	tail := len(b.buf) - (b.head + b.aLen)
	if tail < n && b.head <= tail {
		b.grow(n - tail)
		tail = len(b.buf) - (b.head + b.aLen)
	}
	if tail >= n || tail >= b.head {
		return b.claim(b.head+b.aLen, tail, n)
	}
	return b.claim(0, b.head, n) // wrap: open region B
}

func (b *BipBuffer) claim(off, avail, n int) []byte {
	if avail > n {
		avail = n
	}
	if avail <= 0 {
		return nil
	}
	b.claimOff = off
	return b.buf[off : off+avail]
}

// Commit records that n bytes of the last Claim were filled.
func (b *BipBuffer) Commit(n int) {
	if n < 0 || b.claimOff < 0 {
		panic("wire: BipBuffer.Commit without a claim")
	}
	if n > 0 {
		if b.claimOff == b.head+b.aLen && b.bLen == 0 {
			b.aLen += n
		} else {
			b.bLen += n
		}
	}
	b.claimOff = -1
}

// Write copies data in, claiming and committing as needed (at most two
// regions). It returns the number of bytes accepted, which is less than
// len(data) only when the buffer is full at its ceiling.
func (b *BipBuffer) Write(data []byte) int {
	total := 0
	for len(data) > 0 {
		r := b.Claim(len(data))
		if len(r) == 0 {
			b.claimOff = -1
			break
		}
		n := copy(r, data)
		b.Commit(n)
		data = data[n:]
		total += n
	}
	return total
}

// Head returns the contiguous readable head region (empty when no data
// is buffered). The slice is valid until the next Consume or Write.
func (b *BipBuffer) Head() []byte {
	return b.buf[b.head : b.head+b.aLen]
}

// Consume discards n bytes from the front; n must not exceed
// len(Head()). When region A drains, region B becomes the new A —
// no bytes move.
func (b *BipBuffer) Consume(n int) {
	if n < 0 || n > b.aLen {
		panic("wire: BipBuffer.Consume beyond head region")
	}
	b.head += n
	b.aLen -= n
	if b.aLen == 0 {
		b.head, b.aLen, b.bLen = 0, b.bLen, 0
	}
}

// grow enlarges the backing array by at least need bytes (geometric,
// capped at max), linearizing the buffered bytes into the new array.
// Only the writer path triggers this; steady-state traffic that fits
// the high-water mark never copies.
func (b *BipBuffer) grow(need int) {
	want := len(b.buf) + need
	newCap := 2 * len(b.buf)
	if newCap < 256 {
		newCap = 256
	}
	for newCap < want {
		newCap *= 2
	}
	if newCap > b.max {
		newCap = b.max
	}
	if newCap <= len(b.buf) {
		return // already at the ceiling
	}
	nb := make([]byte, newCap)
	n := copy(nb, b.buf[b.head:b.head+b.aLen])
	n += copy(nb[n:], b.buf[:b.bLen])
	b.buf = nb
	b.head, b.aLen, b.bLen = 0, n, 0
}
