// Command chaos runs the deterministic fault-injection harness: seeded
// fault schedules against the MPI workload on one (or all) of the RPI
// backends, with the protocol invariant oracles armed. On failure it
// prints the violations, the schedule, a shrunk minimal repro, and the
// one-line command reproducing it, then exits 1.
//
// Examples:
//
//	go run ./cmd/chaos -rpi sctp -seeds 50         # 50-seed corpus
//	go run ./cmd/chaos -rpi all -seeds 50          # the `make chaos` gate
//	go run ./cmd/chaos -rpi tcp -seed 17 -v        # one run, verbose
//	go run ./cmd/chaos -rpi sctp -seed 3 -prefix 2 # replay a shrunk repro
//	go run ./cmd/chaos -rpi all -seeds 25 -kill    # session-recovery corpus
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/core"
)

func main() {
	var (
		rpiName   = flag.String("rpi", "all", "backend: tcp, sctp, sctp1to1, or all")
		seed      = flag.Int64("seed", 1, "first schedule/simulation seed")
		seeds     = flag.Int("seeds", 1, "number of consecutive seeds to run")
		events    = flag.Int("events", 5, "fault events per generated schedule")
		prefix    = flag.Int("prefix", 0, "keep only the first N events (<0: none, 0: all)")
		procs     = flag.Int("procs", 4, "world size")
		topology  = flag.String("topo", "", "fabric: fattree or leafspine (empty: full mesh)")
		collectve = flag.String("collective", "", "collective corpus: bcast or allreduce (empty: ring workload)")
		algName   = flag.String("alg", "", "collective algorithm family: tree, naive, or multicast (default)")
		msgSize   = flag.Int("msgsize", 0, "payload bytes per message/collective (0: default 4 KiB)")
		rounds    = flag.Int("rounds", 0, "ring-exchange rounds (0: default 30)")
		horizon   = flag.Duration("horizon", 0, "generated-schedule event window (0: default 10ms)")
		multihome = flag.Bool("multihome", false, "three interfaces per node, heartbeats on")
		kill      = flag.Bool("kill", false, "session-recovery corpus: generated schedules are AssocKill-only")
		noIData   = flag.Bool("noidata", false, "disable RFC 8260 I-DATA interleaving on SCTP transports")
		budget    = flag.Int("budget", 0, "redial budget per loss episode (0: default 8, <0: none)")
		noShrink  = flag.Bool("noshrink", false, "skip shrinking failures")
		verbose   = flag.Bool("v", false, "print every run, not just failures")

		// Oracle self-test knobs: deliberate bugs that must make the
		// harness fail (exercise the failure/shrink/repro path).
		dupEvery   = flag.Int("dup", 0, "mutation: deliver every Nth short message twice")
		dropReplay = flag.Int("dropreplay", 0, "mutation: silently drop the Nth replayed message")
		noChecksum = flag.Bool("nochecksum", false, "mutation: keep CRC32c verify off under Corrupt events")
		mcDup      = flag.Int("mcdup", 0, "mutation: double-count every Nth accepted multicast chunk")
		mcDrop     = flag.Int("mcdrop", 0, "mutation: account every Nth multicast chunk without copying it")
	)
	flag.Parse()

	var transports []core.Transport
	switch *rpiName {
	case "all":
		transports = []core.Transport{core.TCP, core.SCTP, core.SCTPOneToOne}
	case "tcp":
		transports = []core.Transport{core.TCP}
	case "sctp":
		transports = []core.Transport{core.SCTP}
	case "sctp1to1":
		transports = []core.Transport{core.SCTPOneToOne}
	default:
		fmt.Fprintf(os.Stderr, "chaos: unknown -rpi %q (want tcp, sctp, sctp1to1, all)\n", *rpiName)
		os.Exit(2)
	}

	failures := 0
	runs := 0
	for _, tr := range transports {
		for s := *seed; s < *seed+int64(*seeds); s++ {
			spec := chaos.Spec{
				Transport:       tr,
				Seed:            s,
				Events:          *events,
				Prefix:          *prefix,
				Procs:           *procs,
				Topology:        *topology,
				Collective:      *collectve,
				Alg:             *algName,
				MsgSize:         *msgSize,
				Rounds:          *rounds,
				Horizon:         *horizon,
				Multihome:       *multihome,
				AllowKill:       *kill,
				NoIData:         *noIData,
				RedialBudget:    *budget,
				DupDeliverEvery: *dupEvery,
				DropReplayEvery: *dropReplay,
				DisableChecksum: *noChecksum,
				MCDupEvery:      *mcDup,
				MCDropEvery:     *mcDrop,
			}
			res := chaos.Run(spec)
			runs++
			if !res.Failed() {
				if *verbose {
					fmt.Println(res)
				}
				continue
			}
			failures++
			fmt.Println(res)
			if !*noShrink {
				min, minRes := chaos.Shrink(spec)
				if minRes != nil && len(minRes.Schedule) < len(res.Schedule) {
					fmt.Printf("shrunk to %d/%d event(s):\n", len(minRes.Schedule), len(res.Schedule))
					fmt.Println(minRes)
					_ = min
				}
			}
		}
	}
	if failures > 0 {
		fmt.Printf("chaos: %d/%d run(s) FAILED\n", failures, runs)
		os.Exit(1)
	}
	fmt.Printf("chaos: %d run(s) ok\n", runs)
}
