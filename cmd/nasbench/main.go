// Command nasbench runs the NAS-like kernels (LU, SP, EP, CG, BT, MG,
// IS) standalone on the simulated cluster.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/bench/nas"
	"repro/internal/core"
)

func main() {
	transport := flag.String("transport", "sctp", "tcp|sctp|sctp1|sctp1to1")
	kernel := flag.String("kernel", "all", "LU|SP|EP|CG|BT|MG|IS|all")
	class := flag.String("class", "B", "S|W|A|B")
	loss := flag.Float64("loss", 0, "Bernoulli loss rate")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 1,
		"concurrent kernel runs; 0 selects GOMAXPROCS (results are identical at any setting)")
	flag.Parse()
	bench.SetParallelism(*parallel)

	tr, err := core.ParseTransport(*transport)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	c := nas.Class(strings.ToUpper(*class)[0])

	var selected []nas.Kernel
	for _, k := range nas.Kernels() {
		if *kernel == "all" || strings.EqualFold(*kernel, k.Name) {
			selected = append(selected, k)
		}
	}
	results := make([]nas.Result, len(selected))
	err = bench.RunCells(len(selected), func(i int) error {
		r, err := nas.Run(core.Options{Transport: tr, Seed: *seed, LossRate: *loss}, selected[i], c)
		if err != nil {
			return fmt.Errorf("%s: %w", selected[i].Name, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Printf("%-3s class %c %s: %8.1f Mop/s total  (%.3f s virtual)\n",
			r.Name, r.Class, tr, r.Mops, r.Elapsed.Seconds())
	}
}
