// Command nasbench runs the NAS-like kernels (LU, SP, EP, CG, BT, MG,
// IS) standalone on the simulated cluster.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench/nas"
	"repro/internal/core"
)

func main() {
	transport := flag.String("transport", "sctp", "tcp|sctp|sctp1|sctp1to1")
	kernel := flag.String("kernel", "all", "LU|SP|EP|CG|BT|MG|IS|all")
	class := flag.String("class", "B", "S|W|A|B")
	loss := flag.Float64("loss", 0, "Bernoulli loss rate")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	tr, err := core.ParseTransport(*transport)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	c := nas.Class(strings.ToUpper(*class)[0])

	for _, k := range nas.Kernels() {
		if *kernel != "all" && !strings.EqualFold(*kernel, k.Name) {
			continue
		}
		r, err := nas.Run(core.Options{Transport: tr, Seed: *seed, LossRate: *loss}, k, c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", k.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-3s class %c %s: %8.1f Mop/s total  (%.3f s virtual)\n",
			r.Name, r.Class, tr, r.Mops, r.Elapsed.Seconds())
	}
}
