// Command farm runs the Bulk Processor Farm program (paper §4.2.1)
// standalone: one manager, N-1 workers, configurable task size, fanout
// and loss rate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	transport := flag.String("transport", "sctp", "tcp|sctp|sctp1 (single stream)|sctp1to1 (one socket per peer)")
	procs := flag.Int("procs", 8, "processes (1 manager + N-1 workers)")
	tasks := flag.Int("tasks", 10000, "total tasks")
	size := flag.Int("size", 30<<10, "task size in bytes (paper: 30K short, 300K long)")
	fanout := flag.Int("fanout", 1, "tasks per request (paper: 1 and 10)")
	tags := flag.Int("tags", 10, "distinct task tags (MaxWorkTags)")
	outstanding := flag.Int("outstanding", 10, "outstanding requests per worker")
	loss := flag.Float64("loss", 0, "Bernoulli loss rate")
	seed := flag.Int64("seed", 1, "simulation seed")
	seeds := flag.Int("seeds", 1, "independent seeded runs (reported separately)")
	parallel := flag.Int("parallel", 1,
		"concurrent runs when -seeds > 1; 0 selects GOMAXPROCS (results are identical at any setting)")
	flag.Parse()
	bench.SetParallelism(*parallel)

	tr, err := core.ParseTransport(*transport)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	results := make([]bench.FarmResult, *seeds)
	err = bench.RunCells(*seeds, func(i int) error {
		r, err := bench.Farm(core.Options{
			Procs:     *procs,
			Transport: tr,
			Seed:      *seed + int64(i),
			LossRate:  *loss,
		}, bench.FarmConfig{
			NumTasks:    *tasks,
			TaskSize:    *size,
			Fanout:      *fanout,
			MaxWorkTags: *tags,
			Outstanding: *outstanding,
		})
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, r := range results {
		fmt.Printf("%s procs=%d tasks=%d size=%d fanout=%d loss=%.2f%% seed=%d: total run time %.3f s\n",
			tr, *procs, r.TasksDone, *size, *fanout, *loss*100, *seed+int64(i), r.RunTime.Seconds())
	}
}
