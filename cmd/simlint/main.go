// Command simlint runs the repository's custom static-analysis suite
// (internal/analysis) over the module: the syntactic rules (nopreempt,
// seqnum, maporder, sentinel) plus the flow-sensitive rules built on
// the CFG/dataflow engine (reflease, epochguard, probepure, timeflow).
// It is the `make lint` gate.
//
// With no arguments it sweeps every package in the module, applying the
// simulation-world rules to the simulated packages and the everywhere
// rules (seqnum, sentinel, reflease, probepure, flow-only timeflow) to
// the rest. With directory arguments it lints exactly those package
// directories under the full rule set (used by the golden fixture gate,
// which asserts each seeded violation fixture fails).
//
// With -json, machine-readable findings are written to stdout as one
// JSON object per line (JSON Lines): every record carries file, line,
// col, rule, and msg; findings silenced by a //simlint:allow directive
// are still emitted with "suppressed": true and the directive's
// justification, so the stream is a complete audit trail. Exit status
// is unchanged by -json.
//
// Exit status is 1 when any diagnostic survives suppression, 0 on a
// clean tree, 2 on load errors. Suppressions are written in the source
// as
//
//	//simlint:allow <rule> <why>
//
// and an empty justification is itself an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "module root directory")
	verbose := flag.Bool("v", false, "list packages as they are checked")
	jsonOut := flag.Bool("json", false, "emit findings as JSON Lines on stdout (including suppressed ones)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: simlint [-root dir] [-v] [-json] [package-dir ...]\n\nrules: %s\n",
			strings.Join(analysis.RuleNames(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	mod, err := analysis.NewModule(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	ld := mod.Loader()

	dirs := flag.Args()
	explicit := len(dirs) > 0
	if !explicit {
		dirs, err = analysis.ModuleDirs(ld.Root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	nbad := 0
	for _, dir := range dirs {
		p, err := ld.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
		rules := analysis.AllRules(mod)
		if !explicit {
			rel := strings.TrimPrefix(strings.TrimPrefix(p.ImportPath, ld.Module), "/")
			rules = analysis.RulesFor(mod, rel)
		}
		findings := analysis.RunDetailed(p, rules)
		live := 0
		for _, f := range findings {
			if !f.Suppressed {
				live++
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "simlint: %s (%d rules, %d findings, %d suppressed)\n",
				p.ImportPath, len(rules), live, len(findings)-live)
		}
		for _, f := range findings {
			if *jsonOut {
				// Module-relative paths keep the stream stable across
				// checkouts (the documented schema).
				if rel, err := filepath.Rel(ld.Root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
					f.File = filepath.ToSlash(rel)
				}
				if err := enc.Encode(f); err != nil {
					fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
					os.Exit(2)
				}
				continue
			}
			if !f.Suppressed {
				fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Msg)
			}
		}
		nbad += live
	}
	if nbad > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", nbad)
		os.Exit(1)
	}
}
