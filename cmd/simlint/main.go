// Command simlint runs the repository's custom static-analysis suite
// (internal/analysis) over the module: determinism, nopreempt, seqnum,
// maporder, and sentinel. It is the `make lint` gate.
//
// With no arguments it sweeps every package in the module, applying the
// simulation-world rules to the simulated packages and the seqnum +
// sentinel rules everywhere. With directory arguments it lints exactly
// those package directories under the full rule set (used by the golden
// fixture gate, which asserts each seeded violation fixture fails).
//
// Exit status is 1 when any diagnostic survives suppression, 0 on a
// clean tree. Suppressions are written in the source as
//
//	//simlint:allow <rule> <why>
//
// and an empty justification is itself an error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "module root directory")
	verbose := flag.Bool("v", false, "list packages as they are checked")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: simlint [-root dir] [-v] [package-dir ...]\n\nrules: %s\n",
			strings.Join(analysis.RuleNames(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	ld, err := analysis.NewLoader(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	dirs := flag.Args()
	explicit := len(dirs) > 0
	if !explicit {
		dirs, err = analysis.ModuleDirs(ld.Root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
	}

	nbad := 0
	for _, dir := range dirs {
		p, err := ld.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
		rules := analysis.AllRules(ld.Module)
		if !explicit {
			rel := strings.TrimPrefix(strings.TrimPrefix(p.ImportPath, ld.Module), "/")
			rules = analysis.RulesFor(ld.Module, rel)
		}
		diags := analysis.Run(p, rules)
		if *verbose {
			fmt.Printf("simlint: %s (%d rules, %d findings)\n", p.ImportPath, len(rules), len(diags))
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		nbad += len(diags)
	}
	if nbad > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", nbad)
		os.Exit(1)
	}
}
