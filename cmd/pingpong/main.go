// Command pingpong is a standalone MPBench-style ping-pong tool over
// the simulated cluster: pick a transport, message size, loss rate and
// iteration count, get throughput.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	transport := flag.String("transport", "sctp", "tcp|sctp|sctp1 (single stream)|sctp1to1 (one socket per peer)")
	size := flag.Int("size", 30<<10, "message size in bytes")
	iters := flag.Int("iters", 100, "measured iterations")
	warmup := flag.Int("warmup", 10, "warmup iterations")
	loss := flag.Float64("loss", 0, "Bernoulli loss rate, e.g. 0.01")
	seed := flag.Int64("seed", 1, "simulation seed")
	buf := flag.Int("buf", core.PaperBufSize, "socket buffer bytes")
	flag.Parse()

	tr, err := core.ParseTransport(*transport)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r, err := bench.PingPong(core.Options{
		Transport: tr,
		Seed:      *seed,
		LossRate:  *loss,
		BufSize:   *buf,
	}, *size, *iters, *warmup)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s size=%d loss=%.2f%%: %.0f bytes/s (%d iters in %v virtual)\n",
		tr, r.MsgSize, *loss*100, r.Throughput, r.Iters, r.Elapsed)
}
