// Command paper regenerates the tables and figures of "SCTP versus TCP
// for MPI" (SC'05) on the simulated cluster.
//
//	paper -exp fig8     # ping-pong size sweep, no loss
//	paper -exp table1   # ping-pong under 1%/2% loss
//	paper -exp fig9     # NAS-like kernels, both transports
//	paper -exp fig10    # farm, fanout 1
//	paper -exp fig11    # farm, fanout 10
//	paper -exp fig12    # SCTP multi-stream vs single-stream ablation
//	paper -exp all
//
// -quick shrinks iteration/task counts for a fast pass; the defaults
// match the paper's parameters where tractable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/nas"
	"repro/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig8|table1|fig9|fig10|fig11|fig12|all")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "smaller iteration/task counts")
	class := flag.String("class", "B", "NAS class for fig9: S|W|A|B")
	tasks := flag.Int("tasks", 0, "farm task count override (paper: 10000)")
	rpis := flag.String("rpi", "tcp,sctp",
		"comma-separated RPI backends for fig8 (tcp|sctp|sctp1|sctp1to1)")
	parallel := flag.Int("parallel", 1,
		"concurrent sweep cells; 0 selects GOMAXPROCS (results are identical at any setting)")
	flag.Parse()
	bench.SetParallelism(*parallel)

	var transports []core.Transport
	for _, name := range strings.Split(*rpis, ",") {
		tr, err := core.ParseTransport(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		transports = append(transports, tr)
	}

	iters := 100
	farmTasks := 10000
	if *quick {
		iters = 30
		farmTasks = 500
	}
	if *tasks > 0 {
		farmTasks = *tasks
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v wall time)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig8", func() error {
		t, err := bench.Fig8Transports(*seed, iters, transports)
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
		return nil
	})

	run("table1", func() error {
		t, err := bench.Table1(*seed, iters)
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
		return nil
	})

	run("fig9", func() error {
		c := nas.Class(strings.ToUpper(*class)[0])
		rows, err := nas.Fig9(*seed, c)
		if err != nil {
			return err
		}
		t := &bench.Table{
			Title:   fmt.Sprintf("Figure 9: NAS-like benchmarks, class %c, 8 processes (Mop/s total)", c),
			Columns: []string{"LAM_SCTP", "LAM_TCP", "SCTP/TCP"},
			Notes:   []string{"paper: comparable overall on class B; TCP slightly ahead on MG and BT"},
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, bench.Row{
				Label:  r.Kernel,
				Values: []float64{r.SCTP, r.TCP, r.SCTP / r.TCP},
			})
		}
		fmt.Print(t.Format())
		return nil
	})

	farmFig := func(name string, gen func(int64, int) ([]*bench.Table, error)) func() error {
		return func() error {
			tables, err := gen(*seed, farmTasks)
			if err != nil {
				return err
			}
			for _, t := range tables {
				fmt.Print(t.Format())
				fmt.Println()
			}
			return nil
		}
	}
	run("fig10", farmFig("fig10", bench.Fig10))
	run("fig11", farmFig("fig11", bench.Fig11))
	run("fig12", farmFig("fig12", bench.Fig12))
}
